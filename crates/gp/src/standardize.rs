//! Output standardization.
//!
//! GP priors are zero-mean with O(1) signal variance; raw QoR values
//! (areas in thousands of µm², delays below 1 ns) are not. Each task's
//! outputs are affinely mapped to zero mean / unit variance before
//! fitting and mapped back for prediction. Standardizing *per task* also
//! aligns tasks of different output scale (a 3× larger design), which is
//! what lets the transfer kernel see their shared shape.

/// An affine output transform `z = (y − mean) / scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Standardizer {
    mean: f64,
    scale: f64,
}

impl Standardizer {
    /// Fits the transform to a sample. Degenerate samples (empty, or zero
    /// variance) get `scale = 1` so the transform stays invertible.
    pub fn fit(y: &[f64]) -> Self {
        if y.is_empty() {
            return Standardizer {
                mean: 0.0,
                scale: 1.0,
            };
        }
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64;
        let scale = if var > 1e-24 { var.sqrt() } else { 1.0 };
        Standardizer { mean, scale }
    }

    /// The identity transform.
    pub fn identity() -> Self {
        Standardizer {
            mean: 0.0,
            scale: 1.0,
        }
    }

    /// Fitted mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Fitted scale (standard deviation, or 1 for degenerate samples).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Applies the transform to one value.
    pub fn transform(&self, y: f64) -> f64 {
        (y - self.mean) / self.scale
    }

    /// Applies the transform to a slice, returning a new vector.
    pub fn transform_vec(&self, y: &[f64]) -> Vec<f64> {
        y.iter().map(|&v| self.transform(v)).collect()
    }

    /// Inverts the transform for a predictive mean.
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.scale + self.mean
    }

    /// Inverts the transform for a predictive *variance* (scales by
    /// `scale²`; the mean shift cancels).
    pub fn inverse_var(&self, var_z: f64) -> f64 {
        var_z * self.scale * self.scale
    }
}

impl Default for Standardizer {
    fn default() -> Self {
        Standardizer::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let y = [10.0, 12.0, 14.0, 16.0];
        let s = Standardizer::fit(&y);
        for &v in &y {
            assert!((s.inverse(s.transform(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn standardized_sample_has_zero_mean_unit_var() {
        let y = [3.0, -1.0, 4.0, 1.0, 5.0, 9.0];
        let s = Standardizer::fit(&y);
        let z = s.transform_vec(&y);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_samples_stay_invertible() {
        let s = Standardizer::fit(&[]);
        assert_eq!(s.transform(5.0), 5.0);
        let s = Standardizer::fit(&[7.0, 7.0, 7.0]);
        assert_eq!(s.scale(), 1.0);
        assert_eq!(s.transform(7.0), 0.0);
        assert_eq!(s.inverse(0.0), 7.0);
    }

    #[test]
    fn variance_inversion_squares_scale() {
        let s = Standardizer::fit(&[0.0, 10.0]);
        assert!((s.inverse_var(1.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn identity_is_default() {
        assert_eq!(Standardizer::default(), Standardizer::identity());
    }
}

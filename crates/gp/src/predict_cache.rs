//! Persistent per-candidate solve cache for the predict sweep.
//!
//! Between hyper-parameter refits the tuner only *appends* target rows to
//! the joint Cholesky factor ([`linalg::Cholesky::extend`] keeps every
//! old factor row bit-identical), so the expensive part of a candidate's
//! prediction — the cross-kernel column `k* = k(X, x*)` and its forward
//! substitution `v = L⁻¹ k*` — stays valid as a *prefix*: only the `q`
//! newly conditioned rows are missing. A [`PredictCache`] stores that
//! prefix per candidate so the next sweep pays O(n·q) per still-undecided
//! candidate (q new kernel entries + a q-row tail substitution, see
//! `Cholesky::solve_lower_only_tail`) instead of O(n²) from scratch.
//!
//! ## Invalidation laws
//!
//! 1. **Refit** (fresh [`crate::TransferGp::fit`], including the full-refit
//!    fallback inside `condition_on`) replaces the factor wholesale; the
//!    model's fit epoch changes and
//!    [`crate::TransferGp::predict_latent_batch_cached`] clears the whole
//!    cache on the mismatch. Entries never survive a factor they were not
//!    computed against.
//! 2. **Standardization / weight changes** (every `condition_on` re-fits
//!    the target standardizer and recomputes α) need *no* invalidation:
//!    entries hold only factor-space state (`k*`, `v`); means and
//!    variances are reduced from them afresh on every sweep with the
//!    model's current α and standardizer.
//! 3. **Candidate retirement**: [`PredictCache::begin_sweep`] drops every
//!    entry not touched by the previous sweep, so candidates that were
//!    classified or pruned since then stop occupying memory after one
//!    sweep boundary.
//!
//! The cache never changes results: the cached path is bit-for-bit
//! identical to the from-scratch batch predict (asserted by the gp unit
//! tests and `testkit`'s differential suite).

use std::collections::HashMap;

use crate::counters;

/// One cached candidate: the cross-kernel column and its forward
/// substitution against the factor rows that existed when it was last
/// refreshed (always `k_star.len() == v.len()`), plus the sweep stamp of
/// its last use.
#[derive(Debug, Clone)]
pub(crate) struct CacheEntry {
    pub(crate) k_star: Vec<f64>,
    pub(crate) v: Vec<f64>,
}

/// Per-model, per-objective solve cache for
/// [`crate::TransferGp::predict_latent_batch_cached`]. See the module
/// docs for the invalidation laws.
#[derive(Debug, Default)]
pub struct PredictCache {
    /// Fit epoch of the model the entries were computed against.
    pub(crate) epoch: u64,
    /// Monotone sweep counter; entries carry the stamp of their last use.
    sweep: u64,
    pub(crate) entries: HashMap<u64, (CacheEntry, u64)>,
}

impl PredictCache {
    /// An empty cache. The first cached sweep populates it.
    pub fn new() -> Self {
        PredictCache::default()
    }

    /// Number of cached candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no candidate is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Starts a new sweep: drops every entry the *previous* sweep did not
    /// touch (its candidate was classified or pruned, so it will never be
    /// queried again) and advances the sweep stamp. Call once per tuner
    /// iteration, before the iteration's first cached predict; the
    /// iteration may then run several cached predicts (active set, pool
    /// refinement) that all share the sweep.
    pub fn begin_sweep(&mut self) {
        let sweep = self.sweep;
        let before = self.entries.len();
        self.entries.retain(|_, (_, touched)| *touched == sweep);
        let evicted = before - self.entries.len();
        if evicted > 0 {
            counters::add_predict_cache_evictions(evicted as u64);
        }
        self.sweep += 1;
    }

    /// The current sweep stamp (entries refreshed now carry it).
    pub(crate) fn sweep(&self) -> u64 {
        self.sweep
    }

    /// Drops everything, counting the evictions — the epoch-mismatch
    /// (refit) path.
    pub(crate) fn clear_stale(&mut self, new_epoch: u64) {
        if !self.entries.is_empty() {
            counters::add_predict_cache_evictions(self.entries.len() as u64);
            self.entries.clear();
        }
        self.epoch = new_epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(p: usize) -> CacheEntry {
        CacheEntry {
            k_star: vec![0.0; p],
            v: vec![0.0; p],
        }
    }

    #[test]
    fn begin_sweep_retains_only_touched_entries() {
        let mut cache = PredictCache::new();
        cache.begin_sweep(); // sweep 0 -> 1
        let s = cache.sweep();
        cache.entries.insert(7, (entry(3), s));
        cache.entries.insert(9, (entry(3), s));
        cache.begin_sweep(); // both touched last sweep: kept
        assert_eq!(cache.len(), 2);
        // Only candidate 7 is touched this sweep.
        let s = cache.sweep();
        cache.entries.get_mut(&7).unwrap().1 = s;
        cache.begin_sweep(); // 9 was not touched: evicted
        assert_eq!(cache.len(), 1);
        assert!(cache.entries.contains_key(&7));
        cache.begin_sweep(); // 7 not touched either: empty again
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_stale_drops_everything_and_moves_epoch() {
        let mut cache = PredictCache::new();
        let s = cache.sweep();
        cache.entries.insert(1, (entry(2), s));
        cache.clear_stale(42);
        assert!(cache.is_empty());
        assert_eq!(cache.epoch, 42);
    }
}

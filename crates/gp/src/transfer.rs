use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use linalg::{Cholesky, Matrix};

use crate::kernel::{Kernel, SquaredExponential, Task, TransferKernel};
use crate::predict_cache::{CacheEntry, PredictCache};
use crate::standardize::Standardizer;
use crate::{GpError, Result};

/// Process-global fit-epoch source: every [`TransferGp::fit`] stamps the
/// model with a fresh, process-unique epoch, while the incremental
/// [`TransferGp::condition_on`] path keeps it (the old factor rows stay
/// bit-identical, so factor-space caches remain valid). A
/// [`PredictCache`] compares its stored epoch against the model's to
/// detect refits — including the full-refit fallback inside
/// `condition_on`, which goes through `fit` and is therefore stamped
/// automatically.
static FIT_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Default number of query columns handled per multi-RHS triangular
/// solve in [`TransferGp::predict_latent_batch`]. At 256 columns the
/// `K*` and `L⁻¹K*` panels for a table-2-sized factor fit in L2 cache;
/// larger panels thrash and erase the multi-RHS win. Per-query results
/// are independent of the block size; callers with unusual cache
/// geometries can override it through the `_with_block` entry points.
pub const PREDICT_BLOCK: usize = 256;

/// Training data of one task: inputs (unit-cube encoded parameter
/// configurations) and observed outputs (one QoR metric).
///
/// Inputs are held behind an [`Arc`] so the per-objective views of one
/// design table (same configurations, different QoR column) share a
/// single encoded copy: cloning a `TaskData` — which the tuner and the
/// hyper-parameter search do per objective and per refit — bumps a
/// reference count instead of deep-copying the whole input set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskData {
    /// Input points (shared; see the type-level docs).
    pub x: Arc<Vec<Vec<f64>>>,
    /// Observed outputs, parallel to `x`.
    pub y: Vec<f64>,
}

impl TaskData {
    /// Creates task data from parallel input/output lists.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<f64>) -> Self {
        TaskData { x: Arc::new(x), y }
    }

    /// Creates task data that shares an already-encoded input set —
    /// the zero-copy constructor for per-objective views.
    pub fn from_shared(x: Arc<Vec<Vec<f64>>>, y: Vec<f64>) -> Self {
        TaskData { x, y }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when the task has no observations.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Hyper-parameters of a [`TransferGp`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransferGpConfig {
    /// ARD lengthscales of the shared base kernel.
    pub lengthscales: Vec<f64>,
    /// Signal variance of the base kernel (standardized output space).
    pub signal_var: f64,
    /// Cross-task correlation factor `λ = 2(1/(1+a))^b − 1 ∈ (−1, 1]`.
    pub lambda: f64,
    /// Source-task observation noise variance `β_s⁻¹` (standardized).
    pub noise_source: f64,
    /// Target-task observation noise variance `β_t⁻¹` (standardized).
    pub noise_target: f64,
}

impl TransferGpConfig {
    /// A reasonable default for unit-cube inputs: moderately smooth,
    /// strong positive transfer.
    pub fn default_for_dim(dim: usize) -> Self {
        TransferGpConfig {
            lengthscales: vec![0.4; dim.max(1)],
            signal_var: 1.0,
            lambda: 0.8,
            noise_source: 1e-3,
            noise_target: 1e-3,
        }
    }
}

/// The two-task transfer Gaussian process of PPATuner §3.1 (Eq. 8).
///
/// The joint prior over source and target observations uses the transfer
/// kernel `K̃` (Eq. 7) plus the per-task noise matrix
/// `Λ = diag(β_s⁻¹ I_N, β_t⁻¹ I_M)`. Inference for a target-task query is
/// standard GP inference against the joint training set:
///
/// `μ(x) = k(x, X)ᵀ (K̃ + Λ)⁻¹ y`,
/// `σ²(x) = k(x, x) + β_t⁻¹ − k(x, X)ᵀ (K̃ + Λ)⁻¹ k(x, X)`.
///
/// Outputs are standardized **per task**, so a source design with a
/// different output scale (e.g. 3× the power) still transfers its shape.
///
/// # Example
///
/// ```
/// use gp::{TransferGp, TransferGpConfig, TaskData};
///
/// # fn main() -> Result<(), gp::GpError> {
/// // Source: dense observations of f; target: few observations of a
/// // shifted copy of f.
/// let f = |x: f64| (5.0 * x).sin();
/// let source = TaskData::new(
///     (0..25).map(|i| vec![i as f64 / 24.0]).collect(),
///     (0..25).map(|i| f(i as f64 / 24.0)).collect(),
/// );
/// let target = TaskData::new(
///     vec![vec![0.1], vec![0.5], vec![0.9]],
///     vec![f(0.1) + 0.2, f(0.5) + 0.2, f(0.9) + 0.2],
/// );
/// let tgp = TransferGp::fit(source, target, TransferGpConfig::default_for_dim(1))?;
/// let (mean, var) = tgp.predict(&[0.3])?;
/// assert!((mean - (f(0.3) + 0.2)).abs() < 0.3);
/// assert!(var >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct TransferGp {
    kernel: TransferKernel<SquaredExponential>,
    x_source: Arc<Vec<Vec<f64>>>,
    x_target: Arc<Vec<Vec<f64>>>,
    /// Raw (unstandardized) outputs, kept so the model can re-fit itself
    /// from scratch when an incremental [`TransferGp::condition_on`]
    /// extension is numerically rejected.
    y_source: Vec<f64>,
    y_target: Vec<f64>,
    alpha: Vec<f64>,
    chol: Cholesky,
    std_target: Standardizer,
    noise_target: f64,
    z_joint: Vec<f64>,
    /// Log marginal likelihood of the source block alone (0 when empty).
    source_lml: f64,
    /// Diagonal jitter that `Cholesky::new_with_jitter` had to add to the
    /// joint kernel before factorization succeeded (0 when none).
    jitter: f64,
    /// Process-unique stamp of the factorization lineage (see
    /// [`FIT_EPOCH`]); preserved by incremental conditioning, refreshed
    /// by every full (re)fit.
    fit_epoch: u64,
    config: TransferGpConfig,
}

impl TransferGp {
    /// Fits the transfer GP on source + target data.
    ///
    /// The source may be empty, in which case the model degenerates to a
    /// plain GP on the target task (useful for no-transfer ablations).
    ///
    /// # Errors
    ///
    /// - [`GpError::InvalidTrainingData`] when the target task is empty,
    ///   input dimensions disagree, or values are non-finite;
    /// - [`GpError::InvalidHyperparameter`] for out-of-range
    ///   hyper-parameters;
    /// - [`GpError::Factorization`] when the joint kernel matrix cannot be
    ///   factored.
    pub fn fit(source: TaskData, target: TaskData, config: TransferGpConfig) -> Result<Self> {
        if target.is_empty() {
            return Err(GpError::InvalidTrainingData {
                reason: "target task needs at least one observation",
            });
        }
        if source.x.len() != source.y.len() || target.x.len() != target.y.len() {
            return Err(GpError::InvalidTrainingData {
                reason: "x and y lengths differ",
            });
        }
        for v in [config.noise_source, config.noise_target] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(GpError::InvalidHyperparameter {
                    name: "noise",
                    value: v,
                });
            }
        }
        let base = SquaredExponential::new(config.signal_var, config.lengthscales.clone())?;
        let dim = base.dim();
        for row in source.x.iter().chain(target.x.iter()) {
            if row.len() != dim {
                return Err(GpError::DimensionMismatch {
                    expected: dim,
                    got: row.len(),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(GpError::InvalidTrainingData {
                    reason: "training inputs must be finite",
                });
            }
        }
        if source.y.iter().chain(&target.y).any(|v| !v.is_finite()) {
            return Err(GpError::InvalidTrainingData {
                reason: "training outputs must be finite",
            });
        }
        let kernel = TransferKernel::with_lambda(base, config.lambda)?;

        // Per-task standardization.
        let std_source = if source.is_empty() {
            Standardizer::identity()
        } else {
            Standardizer::fit(&source.y)
        };
        let std_target = Standardizer::fit(&target.y);
        let n = source.len();
        let m = target.len();
        let mut z_joint = Vec::with_capacity(n + m);
        z_joint.extend(source.y.iter().map(|&v| std_source.transform(v)));
        z_joint.extend(target.y.iter().map(|&v| std_target.transform(v)));

        // Joint kernel matrix K̃ + Λ.
        let task_of = |i: usize| if i < n { Task::Source } else { Task::Target };
        let point_of = |i: usize| -> &[f64] {
            if i < n {
                &source.x[i]
            } else {
                &target.x[i - n]
            }
        };
        crate::counters::add_fitcache_misses(1);
        crate::counters::add_kernel_assemblies(1);
        let mut k = Matrix::from_fn(n + m, n + m, |i, j| {
            kernel.eval_task(point_of(i), task_of(i), point_of(j), task_of(j))
        });
        for i in 0..(n + m) {
            let noise = if i < n {
                config.noise_source
            } else {
                config.noise_target
            };
            k[(i, i)] += noise;
        }
        let (chol, jitter) = Cholesky::new_with_jitter(&k, 1e-10, 12)?;
        let alpha = chol.solve_vec(&z_joint)?;

        // Source-block marginal likelihood, for the conditional objective.
        let source_lml = if n == 0 {
            0.0
        } else {
            let k_ss = k.submatrix(0, n, 0, n);
            let (chol_s, _) = Cholesky::new_with_jitter(&k_ss, 1e-10, 12)?;
            let z_s = &z_joint[..n];
            let alpha_s = chol_s.solve_vec(z_s)?;
            -0.5 * linalg::vecops::dot(z_s, &alpha_s)
                - 0.5 * chol_s.log_det()
                - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
        };

        Ok(TransferGp {
            kernel,
            x_source: source.x,
            x_target: target.x,
            y_source: source.y,
            y_target: target.y,
            alpha,
            chol,
            std_target,
            noise_target: config.noise_target,
            z_joint,
            source_lml,
            jitter,
            fit_epoch: FIT_EPOCH.fetch_add(1, Ordering::Relaxed) + 1,
            config,
        })
    }

    /// Conditions the fitted model on `k` additional target observations
    /// without re-optimizing hyper-parameters and without refactoring the
    /// joint kernel from scratch: the existing Cholesky factor is extended
    /// by the new rows (see [`Cholesky::extend`]), which costs
    /// O((N+M)²·k) instead of the O((N+M+k)³) full refit.
    ///
    /// The target standardizer is re-fitted over the full (extended)
    /// output set and the weight vector recomputed, so the result is the
    /// model [`TransferGp::fit`] would produce on the extended data, up
    /// to floating-point round-off in the factor (see
    /// [`Cholesky::extend`]). When the incremental extension is rejected
    /// (the extended matrix is not numerically positive definite at the
    /// stored jitter), the model transparently falls back to a full refit
    /// with jitter escalation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TransferGp::fit`] on the new observations
    /// (dimension mismatches, non-finite values); `self` is unchanged on
    /// error.
    pub fn condition_on(&mut self, new_x: &[Vec<f64>], new_y: &[f64]) -> Result<()> {
        if new_x.len() != new_y.len() {
            return Err(GpError::InvalidTrainingData {
                reason: "x and y lengths differ",
            });
        }
        if new_x.is_empty() {
            return Ok(());
        }
        let dim = self.kernel.base().dim();
        for row in new_x {
            if row.len() != dim {
                return Err(GpError::DimensionMismatch {
                    expected: dim,
                    got: row.len(),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(GpError::InvalidTrainingData {
                    reason: "training inputs must be finite",
                });
            }
        }
        if new_y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::InvalidTrainingData {
                reason: "training outputs must be finite",
            });
        }
        let n = self.x_source.len();
        let m = self.x_target.len();
        let k = new_x.len();

        // Covariance of every existing joint point with each new
        // (target-task) point, and of the new points among themselves
        // with the target noise — and the stored jitter, matching the
        // diagonal the existing factor was computed with.
        let cross = Matrix::from_fn(n + m, k, |i, j| {
            let (xi, ti) = if i < n {
                (&self.x_source[i], Task::Source)
            } else {
                (&self.x_target[i - n], Task::Target)
            };
            self.kernel.eval_task(xi, ti, &new_x[j], Task::Target)
        });
        let mut corner = Matrix::from_fn(k, k, |i, j| {
            self.kernel
                .eval_task(&new_x[i], Task::Target, &new_x[j], Task::Target)
        });
        for i in 0..k {
            corner[(i, i)] += self.config.noise_target + self.jitter;
        }

        let mut chol = self.chol.clone();
        if chol.extend(&cross, &corner).is_err() {
            // Numerically rejected: fall back to a full refit, which can
            // escalate jitter. Rebuild owned task data from stored state.
            let source = TaskData::from_shared(Arc::clone(&self.x_source), self.y_source.clone());
            let mut xt: Vec<Vec<f64>> = (*self.x_target).clone();
            xt.extend(new_x.iter().cloned());
            let mut yt = self.y_target.clone();
            yt.extend_from_slice(new_y);
            *self = TransferGp::fit(source, TaskData::new(xt, yt), self.config.clone())?;
            return Ok(());
        }

        // Every fallible step runs on locals first, so a failure leaves
        // `self` exactly as it was (the documented error contract), never
        // half-extended. Per-task standardization is over the *current*
        // target sample, so the whole target block of z is recomputed (the
        // source block and its marginal likelihood are untouched).
        let mut y_target = self.y_target.clone();
        y_target.extend_from_slice(new_y);
        let std_target = Standardizer::fit(&y_target);
        let mut z_joint = self.z_joint[..n].to_vec();
        z_joint.extend(y_target.iter().map(|&v| std_target.transform(v)));
        let alpha = chol.solve_vec(&z_joint)?;

        Arc::make_mut(&mut self.x_target).extend(new_x.iter().cloned());
        self.y_target = y_target;
        self.std_target = std_target;
        self.z_joint = z_joint;
        self.alpha = alpha;
        self.chol = chol;
        Ok(())
    }

    /// Refits on `source`/`target` with this model's hyper-parameters
    /// unchanged — no marginal-likelihood search, just a fresh joint
    /// factorization (with jitter escalation) over the given data. This is
    /// the degraded-mode recovery hook: when a full re-optimization fails
    /// numerically (jitter ladder exhausted, NaN in the hyper-parameter
    /// search), a run supervisor can fall back to the last-good
    /// hyper-parameters while still incorporating fresh observations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TransferGp::fit`]. `self` is unchanged — the
    /// recovered model is returned by value so the caller decides whether
    /// to adopt it.
    pub fn refit_data_only(&self, source: TaskData, target: TaskData) -> Result<TransferGp> {
        TransferGp::fit(source, target, self.config.clone())
    }

    /// Number of source observations.
    pub fn source_len(&self) -> usize {
        self.x_source.len()
    }

    /// Number of target observations.
    pub fn target_len(&self) -> usize {
        self.x_target.len()
    }

    /// The cross-task factor λ in use.
    pub fn lambda(&self) -> f64 {
        self.kernel.lambda()
    }

    /// Diagonal jitter added so the joint kernel's Cholesky factorization
    /// succeeded (0 when the matrix was well-conditioned as-is). Useful as
    /// a conditioning diagnostic in traces.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Process-unique stamp of this model's factorization lineage: fresh
    /// after every full (re)fit, preserved across incremental
    /// [`TransferGp::condition_on`] extensions (whose appended rows leave
    /// the old factor rows bit-identical). [`PredictCache`] keys its
    /// validity on this.
    pub fn fit_epoch(&self) -> u64 {
        self.fit_epoch
    }

    /// The hyper-parameter configuration in use.
    pub fn config(&self) -> &TransferGpConfig {
        &self.config
    }

    /// Predictive mean and variance for a **target-task** query, in the
    /// target task's natural units (Eq. 8). The variance includes the
    /// target observation noise `β_t⁻¹`, i.e. it predicts a tool
    /// measurement, not the latent function.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::DimensionMismatch`] for queries of the wrong
    /// dimension.
    pub fn predict(&self, x: &[f64]) -> Result<(f64, f64)> {
        let (mean, var_latent) = self.predict_latent(x)?;
        Ok((
            mean,
            var_latent + self.std_target.inverse_var(self.noise_target),
        ))
    }

    /// Predictive mean and **latent-function** variance (no observation
    /// noise) for a target-task query. This is the variance the tuner's
    /// uncertainty regions use: it can shrink below the tool-noise floor
    /// as evidence accumulates, so classification converges.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::DimensionMismatch`] for queries of the wrong
    /// dimension.
    pub fn predict_latent(&self, x: &[f64]) -> Result<(f64, f64)> {
        if x.len() != self.kernel.base().dim() {
            return Err(GpError::DimensionMismatch {
                expected: self.kernel.base().dim(),
                got: x.len(),
            });
        }
        let mut k_star = Vec::with_capacity(self.x_source.len() + self.x_target.len());
        for xi in self.x_source.iter() {
            k_star.push(self.kernel.eval_task(xi, Task::Source, x, Task::Target));
        }
        for xi in self.x_target.iter() {
            k_star.push(self.kernel.eval_task(xi, Task::Target, x, Task::Target));
        }
        let mean_z = linalg::vecops::dot(&k_star, &self.alpha);
        let v = self.chol.solve_lower_only(&k_star)?;
        let c = self.kernel.eval_task(x, Task::Target, x, Task::Target);
        let var_z = (c - linalg::vecops::dot(&v, &v)).max(0.0);
        Ok((
            self.std_target.inverse(mean_z),
            self.std_target.inverse_var(var_z),
        ))
    }

    /// Batch prediction for target-task queries, via the multi-RHS path
    /// of [`TransferGp::predict_latent_batch`] plus the observation-noise
    /// floor of [`TransferGp::predict`].
    ///
    /// # Errors
    ///
    /// Fails on any dimension mismatch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<(f64, f64)>> {
        self.predict_batch_with_block(xs, PREDICT_BLOCK)
    }

    /// [`TransferGp::predict_batch`] with an explicit solve block size.
    /// Results are bit-identical for every valid `block`; only the
    /// panel-at-a-time walk of the Cholesky factor changes.
    ///
    /// # Errors
    ///
    /// [`GpError::InvalidHyperparameter`] when `block` is 0, plus the
    /// dimension checks of [`TransferGp::predict_batch`].
    pub fn predict_batch_with_block(
        &self,
        xs: &[Vec<f64>],
        block: usize,
    ) -> Result<Vec<(f64, f64)>> {
        let noise = self.std_target.inverse_var(self.noise_target);
        Ok(self
            .predict_latent_batch_with_block(xs, block)?
            .into_iter()
            .map(|(mean, var)| (mean, var + noise))
            .collect())
    }

    /// Batch form of [`TransferGp::predict_latent`]: assembles the
    /// cross-covariance matrix `K*` for a block of queries at a time and
    /// runs one multi-RHS triangular solve per block instead of one
    /// forward substitution per query, so a candidate sweep walks the
    /// Cholesky factor once per block instead of once per point. Blocks
    /// are capped at [`PREDICT_BLOCK`] columns so `K*` and `L⁻¹K*` stay
    /// resident in cache even for very large sweeps.
    ///
    /// Per query the arithmetic (accumulation order of the mean dot
    /// product and of `‖L⁻¹k*‖²`) is exactly that of the scalar path, so
    /// results are bit-identical to calling [`TransferGp::predict_latent`]
    /// in a loop — and independent of how callers chunk `xs`.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::DimensionMismatch`] for queries of the wrong
    /// dimension.
    pub fn predict_latent_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<(f64, f64)>> {
        self.predict_latent_batch_with_block(xs, PREDICT_BLOCK)
    }

    /// [`TransferGp::predict_latent_batch`] with an explicit solve block
    /// size. Results are bit-identical for every valid `block`.
    ///
    /// # Errors
    ///
    /// [`GpError::InvalidHyperparameter`] when `block` is 0;
    /// [`GpError::DimensionMismatch`] for queries of the wrong dimension.
    pub fn predict_latent_batch_with_block(
        &self,
        xs: &[Vec<f64>],
        block: usize,
    ) -> Result<Vec<(f64, f64)>> {
        self.check_batch_args(xs, block)?;
        let mut out = Vec::with_capacity(xs.len());
        for chunk in xs.chunks(block) {
            self.predict_latent_block(chunk, &mut out)?;
        }
        Ok(out)
    }

    /// One block of [`TransferGp::predict_latent_batch`]: assemble `K*`,
    /// solve `L V = K*` for all columns at once, then reduce each column
    /// with the exact scalar-path accumulation order.
    fn predict_latent_block(&self, xs: &[Vec<f64>], out: &mut Vec<(f64, f64)>) -> Result<()> {
        if xs.is_empty() {
            return Ok(());
        }
        let n = self.x_source.len();
        let p = n + self.x_target.len();
        let k_star = Matrix::from_fn(p, xs.len(), |i, q| {
            let (xi, ti) = if i < n {
                (&self.x_source[i], Task::Source)
            } else {
                (&self.x_target[i - n], Task::Target)
            };
            self.kernel.eval_task(xi, ti, &xs[q], Task::Target)
        });
        let v = self.chol.solve_lower_only_multi(&k_star)?;
        for (q, x) in xs.iter().enumerate() {
            let mut mean_z = 0.0;
            for (i, &a) in self.alpha.iter().enumerate() {
                mean_z += k_star[(i, q)] * a;
            }
            let mut vv = 0.0;
            for i in 0..p {
                let vi = v[(i, q)];
                vv += vi * vi;
            }
            let c = self.kernel.eval_task(x, Task::Target, x, Task::Target);
            let var_z = (c - vv).max(0.0);
            out.push((
                self.std_target.inverse(mean_z),
                self.std_target.inverse_var(var_z),
            ));
        }
        Ok(())
    }

    /// Data-parallel form of
    /// [`TransferGp::predict_latent_batch_with_block`]: the `block`-sized
    /// chunks are fanned out over at most `workers` scoped threads with
    /// an atomic-cursor work queue and merged in chunk order. Because the
    /// chunk decomposition is exactly the serial `xs.chunks(block)` walk
    /// and per-chunk arithmetic never crosses chunk boundaries, the
    /// output is **bitwise identical** for every worker count (including
    /// 1, which skips the fan-out) and every valid `block`.
    ///
    /// # Errors
    ///
    /// [`GpError::InvalidHyperparameter`] when `block` is 0;
    /// [`GpError::DimensionMismatch`] for queries of the wrong dimension.
    pub fn predict_latent_batch_par(
        &self,
        xs: &[Vec<f64>],
        block: usize,
        workers: usize,
    ) -> Result<Vec<(f64, f64)>> {
        self.check_batch_args(xs, block)?;
        let n_chunks = xs.len().div_ceil(block);
        crate::counters::add_predict_chunks(n_chunks as u64);
        let chunks = run_chunks_par(n_chunks, workers, |c| {
            let lo = c * block;
            let hi = (lo + block).min(xs.len());
            let mut out = Vec::with_capacity(hi - lo);
            self.predict_latent_block(&xs[lo..hi], &mut out)
                .map(|()| out)
        });
        let mut out = Vec::with_capacity(xs.len());
        for chunk in chunks {
            out.extend(chunk?);
        }
        Ok(out)
    }

    /// Cached-incremental predict sweep: like
    /// [`TransferGp::predict_latent_batch_par`], but candidate solve
    /// state (`k* = k(X, x*)`, `v = L⁻¹k*`) persists in `cache` between
    /// sweeps, keyed by the caller's stable candidate `ids`. When the
    /// model has only been *conditioned* since a candidate's last sweep
    /// (q appended target rows), the candidate pays q new kernel entries
    /// plus a q-row tail substitution instead of a from-scratch column —
    /// O(P·n·q) per sweep instead of O(P·n²) over P undecided candidates.
    ///
    /// Results are **bitwise identical** to
    /// [`TransferGp::predict_latent_batch_with_block`] at any worker
    /// count and any hit/miss mix: cached prefixes are bit-stable because
    /// [`Cholesky::extend`] never rewrites old factor rows, the tail
    /// substitution replays the exact from-scratch recurrence, and means
    /// and variances are reduced from factor-space state afresh each call
    /// with the current weights and standardizer (so conditioning's α and
    /// standardizer updates need no invalidation). A fit-epoch mismatch
    /// (any full refit) clears the cache wholesale before the sweep.
    ///
    /// Call [`PredictCache::begin_sweep`] once per tuner iteration before
    /// the first cached sweep so entries whose candidates were classified
    /// or pruned stop occupying memory.
    ///
    /// # Errors
    ///
    /// [`GpError::InvalidHyperparameter`] when `block` is 0;
    /// [`GpError::InvalidTrainingData`] when `ids` and `xs` disagree in
    /// length; [`GpError::DimensionMismatch`] for queries of the wrong
    /// dimension.
    pub fn predict_latent_batch_cached(
        &self,
        ids: &[u64],
        xs: &[Vec<f64>],
        block: usize,
        workers: usize,
        cache: &mut PredictCache,
    ) -> Result<Vec<(f64, f64)>> {
        self.check_batch_args(xs, block)?;
        if ids.len() != xs.len() {
            return Err(GpError::InvalidTrainingData {
                reason: "candidate ids and queries must have equal length",
            });
        }
        if cache.epoch != self.fit_epoch {
            cache.clear_stale(self.fit_epoch);
        }
        let p = self.x_source.len() + self.x_target.len();
        let n_chunks = xs.len().div_ceil(block);
        crate::counters::add_predict_chunks(n_chunks as u64);

        // Drain this sweep's entries from the map serially, pre-split
        // into per-chunk owned batches each worker takes whole. An entry
        // longer than the current factor cannot exist at a matching epoch;
        // drop it defensively as a miss.
        let mut taken = ids.iter().map(|id| {
            cache
                .entries
                .remove(id)
                .map(|(e, _)| e)
                .filter(|e| e.k_star.len() <= p)
        });
        let mut chunk_inputs: Vec<Mutex<Vec<Option<CacheEntry>>>> = Vec::with_capacity(n_chunks);
        for c in 0..n_chunks {
            let len = ((c + 1) * block).min(xs.len()) - c * block;
            chunk_inputs.push(Mutex::new(taken.by_ref().take(len).collect()));
        }

        let chunks = run_chunks_par(n_chunks, workers, |c| {
            let lo = c * block;
            let hi = (lo + block).min(xs.len());
            let entries = std::mem::take(
                &mut *chunk_inputs[c]
                    .lock()
                    .expect("predict chunk input poisoned"),
            );
            self.predict_chunk_cached(&xs[lo..hi], entries)
        });

        let sweep = cache.sweep();
        let mut out = Vec::with_capacity(xs.len());
        let (mut hits, mut misses) = (0u64, 0u64);
        for (c, chunk) in chunks.into_iter().enumerate() {
            let (chunk_out, entries, h, m) = chunk?;
            hits += h;
            misses += m;
            let lo = c * block;
            for (j, entry) in entries.into_iter().enumerate() {
                cache.entries.insert(ids[lo + j], (entry, sweep));
            }
            out.extend(chunk_out);
        }
        crate::counters::add_predict_cache_hits(hits);
        crate::counters::add_predict_cache_misses(misses);
        Ok(out)
    }

    /// One chunk of [`TransferGp::predict_latent_batch_cached`]: extend
    /// every hit's solve state by the factor's tail rows, compute all
    /// misses with one multi-RHS solve (per-column bit-identical to the
    /// scalar path, see [`linalg::solve::solve_lower_multi`]), then
    /// reduce every candidate with the exact scalar accumulation order of
    /// [`TransferGp::predict_latent_block`].
    #[allow(clippy::type_complexity)]
    fn predict_chunk_cached(
        &self,
        xs: &[Vec<f64>],
        entries: Vec<Option<CacheEntry>>,
    ) -> Result<(Vec<(f64, f64)>, Vec<CacheEntry>, u64, u64)> {
        let n = self.x_source.len();
        let p = n + self.x_target.len();
        let mut hits = 0u64;
        let mut updated: Vec<Option<CacheEntry>> = Vec::with_capacity(xs.len());
        for (x, maybe) in xs.iter().zip(entries) {
            if let Some(mut e) = maybe {
                // The cached rows cover the old factor; only appended
                // target rows are missing (conditioning never adds source
                // points).
                let start = e.k_star.len();
                for i in start..p {
                    e.k_star.push(self.kernel.eval_task(
                        &self.x_target[i - n],
                        Task::Target,
                        x,
                        Task::Target,
                    ));
                }
                self.chol
                    .solve_lower_only_tail(&e.k_star[start..], &mut e.v)?;
                hits += 1;
                updated.push(Some(e));
            } else {
                updated.push(None);
            }
        }
        let miss_idx: Vec<usize> = updated
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_none())
            .map(|(q, _)| q)
            .collect();
        if !miss_idx.is_empty() {
            let k_star = Matrix::from_fn(p, miss_idx.len(), |i, c| {
                let (xi, ti) = if i < n {
                    (&self.x_source[i], Task::Source)
                } else {
                    (&self.x_target[i - n], Task::Target)
                };
                self.kernel
                    .eval_task(xi, ti, &xs[miss_idx[c]], Task::Target)
            });
            let v = self.chol.solve_lower_only_multi(&k_star)?;
            for (c, &q) in miss_idx.iter().enumerate() {
                updated[q] = Some(CacheEntry {
                    k_star: k_star.col(c),
                    v: v.col(c),
                });
            }
        }
        let mut out = Vec::with_capacity(xs.len());
        let mut final_entries = Vec::with_capacity(xs.len());
        for (x, e) in xs.iter().zip(updated) {
            let e = e.expect("every cached chunk entry is filled");
            let mut mean_z = 0.0;
            for (i, &a) in self.alpha.iter().enumerate() {
                mean_z += e.k_star[i] * a;
            }
            let mut vv = 0.0;
            for &vi in &e.v {
                vv += vi * vi;
            }
            let c = self.kernel.eval_task(x, Task::Target, x, Task::Target);
            let var_z = (c - vv).max(0.0);
            out.push((
                self.std_target.inverse(mean_z),
                self.std_target.inverse_var(var_z),
            ));
            final_entries.push(e);
        }
        Ok((out, final_entries, hits, miss_idx.len() as u64))
    }

    /// Shared validation of the batch predict entry points.
    fn check_batch_args(&self, xs: &[Vec<f64>], block: usize) -> Result<()> {
        if block == 0 {
            return Err(GpError::InvalidHyperparameter {
                name: "predict_block",
                value: 0.0,
            });
        }
        let dim = self.kernel.base().dim();
        for x in xs {
            if x.len() != dim {
                return Err(GpError::DimensionMismatch {
                    expected: dim,
                    got: x.len(),
                });
            }
        }
        Ok(())
    }

    /// Log marginal likelihood of the joint (standardized) data.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.z_joint.len() as f64;
        let fit = -0.5 * linalg::vecops::dot(&self.z_joint, &self.alpha);
        let complexity = -0.5 * self.chol.log_det();
        fit + complexity - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Log marginal likelihood of the **target** data conditioned on the
    /// source data, `log p(y_T | y_S, θ) = log p(y_T, y_S) − log p(y_S)`.
    ///
    /// This is the training objective the paper prescribes ("learned by
    /// maximizing the marginal likelihood of data of the target task"):
    /// it rewards hyper-parameters for predicting the *target* well given
    /// the source, instead of compromising them to also explain source
    /// regions the target never visits. Equals the plain target marginal
    /// likelihood when the source is empty.
    pub fn log_conditional_likelihood(&self) -> f64 {
        self.log_marginal_likelihood() - self.source_lml
    }

    /// Builds a subset-of-data predictor over at most `m` anchor points:
    /// the posterior obtained by conditioning on a deterministic
    /// farthest-point (maximin) subset of the joint training set, with
    /// the same kernel, λ, and per-task noise.
    ///
    /// Per-query prediction costs O(m) for the mean and O(m²) for the
    /// variance — independent of the full training size — which is what
    /// makes very large evaluation histories affordable to sweep.
    ///
    /// **Error bounds.** Conditioning on a subset of the data can only
    /// lose information, so the subset posterior's latent variance
    /// *dominates* the exact one: `σ²_sod(x) ≥ σ²_exact(x)` (up to the
    /// factorization jitters, which also only add variance). ε-PAL
    /// uncertainty boxes built from the subset path are therefore
    /// conservative supersets of the exact boxes, and every
    /// classification they allow is also allowed by the exact model. The
    /// mean error is governed by the information the subset discards:
    /// for data drawn from the prior, nested conditioning gives
    /// `E[(μ_exact − μ_sod)²] = σ²_sod − σ²_exact ≤ σ²_sod`, so
    /// `|μ_sod(x) − μ_exact(x)| ≲ 3·σ_sod(x)` in-model. That constant is
    /// *not* a theorem: on misspecified data (out-of-model surfaces with
    /// a large task offset) both posteriors can extrapolate confidently
    /// in different directions and the ratio grows. `testkit`'s
    /// differential suite asserts the variance laws strictly and pins
    /// the mean error's empirical envelope against the dense reference
    /// posterior.
    ///
    /// Anchor selection starts at joint index 0 and greedily adds the
    /// point with maximal minimum squared distance to the chosen set
    /// (lowest index on ties), so the subset — and everything downstream
    /// — is a pure function of the training data.
    ///
    /// # Errors
    ///
    /// [`GpError::InvalidHyperparameter`] when `m` is 0;
    /// [`GpError::Factorization`] when the anchor kernel matrix cannot be
    /// factored.
    pub fn subset_predictor(&self, m: usize) -> Result<SubsetPredictor> {
        if m == 0 {
            return Err(GpError::InvalidHyperparameter {
                name: "sod_subset",
                value: 0.0,
            });
        }
        let n = self.x_source.len();
        let p = n + self.x_target.len();
        let point_of = |i: usize| -> &[f64] {
            if i < n {
                &self.x_source[i]
            } else {
                &self.x_target[i - n]
            }
        };
        let task_of = |i: usize| if i < n { Task::Source } else { Task::Target };

        // Deterministic farthest-point subset of the joint indices.
        let m = m.min(p);
        let mut chosen: Vec<usize> = Vec::with_capacity(m);
        let mut min_d2 = vec![f64::INFINITY; p];
        chosen.push(0);
        while chosen.len() < m {
            let last = *chosen.last().expect("chosen is non-empty");
            let mut best = None;
            for (i, slot) in min_d2.iter_mut().enumerate() {
                let d2 = sq_dist(point_of(i), point_of(last));
                if d2 < *slot {
                    *slot = d2;
                }
                if !chosen.contains(&i) {
                    // Strictly-greater keeps the lowest index on ties.
                    let better = match best {
                        None => true,
                        Some((_, bd2)) => *slot > bd2,
                    };
                    if better {
                        best = Some((i, *slot));
                    }
                }
            }
            chosen.push(best.expect("m <= p leaves an unchosen point").0);
        }

        let anchors: Vec<Vec<f64>> = chosen.iter().map(|&i| point_of(i).to_vec()).collect();
        let tasks: Vec<Task> = chosen.iter().map(|&i| task_of(i)).collect();
        let z_sub: Vec<f64> = chosen.iter().map(|&i| self.z_joint[i]).collect();

        crate::counters::add_kernel_assemblies(1);
        let mut k = Matrix::from_fn(m, m, |i, j| {
            self.kernel
                .eval_task(&anchors[i], tasks[i], &anchors[j], tasks[j])
        });
        for (i, &orig) in chosen.iter().enumerate() {
            k[(i, i)] += if orig < n {
                self.config.noise_source
            } else {
                self.config.noise_target
            };
        }
        let (chol, _) = Cholesky::new_with_jitter(&k, 1e-10, 12)?;
        let alpha = chol.solve_vec(&z_sub)?;
        Ok(SubsetPredictor {
            kernel: self.kernel.clone(),
            anchors,
            tasks,
            alpha,
            chol,
            std_target: self.std_target,
            noise_target: self.noise_target,
            train_size: p,
        })
    }
}

/// Squared Euclidean distance between two points of equal dimension.
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Runs `run(0..n_chunks)` across at most `workers` scoped threads with
/// an atomic-cursor work-stealing queue (the `run_concurrent` idiom from
/// the oracle fan-out), collecting results into preallocated per-chunk
/// slots and returning them in chunk order. Determinism: every chunk is
/// computed by exactly one worker from the same inputs a serial loop
/// would see, and the merge is by position — so the output is bitwise
/// independent of the worker count and of claim interleaving. With one
/// worker (or one chunk) the fan-out is skipped entirely.
fn run_chunks_par<T, F>(n_chunks: usize, workers: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n_chunks);
    if workers <= 1 {
        return (0..n_chunks).map(run).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let result = run(c);
                *slots[c].lock().expect("predict chunk slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("predict chunk slot poisoned")
                .expect("every predict chunk slot is filled")
        })
        .collect()
}

/// A subset-of-data approximation of a [`TransferGp`] posterior: the
/// exact GP posterior of a maximin-chosen anchor subset of the joint
/// training set. See [`TransferGp::subset_predictor`] for the
/// construction and its error bounds (conservative variance, σ-bounded
/// mean error).
#[derive(Clone)]
pub struct SubsetPredictor {
    kernel: TransferKernel<SquaredExponential>,
    anchors: Vec<Vec<f64>>,
    tasks: Vec<Task>,
    alpha: Vec<f64>,
    chol: Cholesky,
    std_target: Standardizer,
    noise_target: f64,
    train_size: usize,
}

impl SubsetPredictor {
    /// Number of anchor points the predictor conditions on.
    pub fn subset_size(&self) -> usize {
        self.anchors.len()
    }

    /// Joint training-set size of the model this predictor was built
    /// from.
    pub fn train_size(&self) -> usize {
        self.train_size
    }

    /// Predictive mean and latent variance for a target-task query — the
    /// subset-of-data counterpart of [`TransferGp::predict_latent`].
    ///
    /// # Errors
    ///
    /// [`GpError::DimensionMismatch`] for queries of the wrong dimension.
    pub fn predict_latent(&self, x: &[f64]) -> Result<(f64, f64)> {
        let query = [x.to_vec()];
        let out = self.predict_latent_batch_with_block(&query, 1)?;
        Ok(out[0])
    }

    /// Predictive mean and observation variance (latent + `β_t⁻¹`), the
    /// subset-of-data counterpart of [`TransferGp::predict`].
    ///
    /// # Errors
    ///
    /// [`GpError::DimensionMismatch`] for queries of the wrong dimension.
    pub fn predict(&self, x: &[f64]) -> Result<(f64, f64)> {
        let (mean, var) = self.predict_latent(x)?;
        Ok((mean, var + self.std_target.inverse_var(self.noise_target)))
    }

    /// Batch form of [`SubsetPredictor::predict_latent`], blocked like
    /// [`TransferGp::predict_latent_batch_with_block`]; results are
    /// independent of `block`.
    ///
    /// # Errors
    ///
    /// [`GpError::InvalidHyperparameter`] when `block` is 0;
    /// [`GpError::DimensionMismatch`] for queries of the wrong dimension.
    pub fn predict_latent_batch_with_block(
        &self,
        xs: &[Vec<f64>],
        block: usize,
    ) -> Result<Vec<(f64, f64)>> {
        self.check_batch_args(xs, block)?;
        let mut out = Vec::with_capacity(xs.len());
        for chunk in xs.chunks(block) {
            self.predict_latent_block(chunk, &mut out)?;
        }
        Ok(out)
    }

    /// Data-parallel form of
    /// [`SubsetPredictor::predict_latent_batch_with_block`], with the
    /// same chunk decomposition and position-order merge as
    /// [`TransferGp::predict_latent_batch_par`] — bitwise identical at
    /// any worker count and any valid `block`. The subset posterior is
    /// rebuilt each refit, so there is no cached variant; parallelism is
    /// the whole win here.
    ///
    /// # Errors
    ///
    /// [`GpError::InvalidHyperparameter`] when `block` is 0;
    /// [`GpError::DimensionMismatch`] for queries of the wrong dimension.
    pub fn predict_latent_batch_par(
        &self,
        xs: &[Vec<f64>],
        block: usize,
        workers: usize,
    ) -> Result<Vec<(f64, f64)>> {
        self.check_batch_args(xs, block)?;
        let n_chunks = xs.len().div_ceil(block);
        crate::counters::add_predict_chunks(n_chunks as u64);
        let chunks = run_chunks_par(n_chunks, workers, |c| {
            let lo = c * block;
            let hi = (lo + block).min(xs.len());
            let mut out = Vec::with_capacity(hi - lo);
            self.predict_latent_block(&xs[lo..hi], &mut out)
                .map(|()| out)
        });
        let mut out = Vec::with_capacity(xs.len());
        for chunk in chunks {
            out.extend(chunk?);
        }
        Ok(out)
    }

    /// Shared validation of the batch predict entry points.
    fn check_batch_args(&self, xs: &[Vec<f64>], block: usize) -> Result<()> {
        if block == 0 {
            return Err(GpError::InvalidHyperparameter {
                name: "predict_block",
                value: 0.0,
            });
        }
        let dim = self.kernel.base().dim();
        for x in xs {
            if x.len() != dim {
                return Err(GpError::DimensionMismatch {
                    expected: dim,
                    got: x.len(),
                });
            }
        }
        Ok(())
    }

    /// One block: assemble the anchor cross-covariance, one multi-RHS
    /// triangular solve, scalar-order per-query reductions (the same
    /// accumulation order as the exact path, so chunking is invisible).
    fn predict_latent_block(&self, xs: &[Vec<f64>], out: &mut Vec<(f64, f64)>) -> Result<()> {
        if xs.is_empty() {
            return Ok(());
        }
        let m = self.anchors.len();
        let k_star = Matrix::from_fn(m, xs.len(), |i, q| {
            self.kernel
                .eval_task(&self.anchors[i], self.tasks[i], &xs[q], Task::Target)
        });
        let v = self.chol.solve_lower_only_multi(&k_star)?;
        for (q, x) in xs.iter().enumerate() {
            let mut mean_z = 0.0;
            for (i, &a) in self.alpha.iter().enumerate() {
                mean_z += k_star[(i, q)] * a;
            }
            let mut vv = 0.0;
            for i in 0..m {
                let vi = v[(i, q)];
                vv += vi * vi;
            }
            let c = self.kernel.eval_task(x, Task::Target, x, Task::Target);
            let var_z = (c - vv).max(0.0);
            out.push((
                self.std_target.inverse(mean_z),
                self.std_target.inverse_var(var_z),
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for SubsetPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubsetPredictor")
            .field("subset", &self.anchors.len())
            .field("train_size", &self.train_size)
            .finish()
    }
}

impl std::fmt::Debug for TransferGp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferGp")
            .field("n_source", &self.x_source.len())
            .field("n_target", &self.x_target.len())
            .field("lambda", &self.kernel.lambda())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(x: f64) -> f64 {
        (5.0 * x).sin()
    }

    fn source_dense() -> TaskData {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| f(p[0])).collect();
        TaskData::new(x, y)
    }

    fn target_sparse(shift: f64) -> TaskData {
        let pts = [0.05, 0.35, 0.65, 0.95];
        TaskData::new(
            pts.iter().map(|&p| vec![p]).collect(),
            pts.iter().map(|&p| f(p) + shift).collect(),
        )
    }

    #[test]
    fn transfer_beats_target_only_gp() {
        let cfg = TransferGpConfig {
            lengthscales: vec![0.15],
            signal_var: 1.0,
            lambda: 0.95,
            noise_source: 1e-4,
            noise_target: 1e-4,
        };
        let with_source = TransferGp::fit(source_dense(), target_sparse(0.0), cfg.clone()).unwrap();
        let without_source = TransferGp::fit(TaskData::default(), target_sparse(0.0), cfg).unwrap();
        // Error at a point far from target observations but covered by the
        // source.
        let q = [0.2];
        let truth = f(0.2);
        let e_with = (with_source.predict(&q).unwrap().0 - truth).abs();
        let e_without = (without_source.predict(&q).unwrap().0 - truth).abs();
        assert!(
            e_with < e_without,
            "transfer {e_with} should beat no-transfer {e_without}"
        );
    }

    #[test]
    fn transfer_reduces_uncertainty() {
        let cfg = TransferGpConfig {
            lengthscales: vec![0.15],
            signal_var: 1.0,
            lambda: 0.95,
            noise_source: 1e-4,
            noise_target: 1e-4,
        };
        let with_source = TransferGp::fit(source_dense(), target_sparse(0.0), cfg.clone()).unwrap();
        let without_source = TransferGp::fit(TaskData::default(), target_sparse(0.0), cfg).unwrap();
        let q = [0.2];
        assert!(with_source.predict(&q).unwrap().1 < without_source.predict(&q).unwrap().1);
    }

    #[test]
    fn lambda_zero_ignores_source() {
        let cfg_zero = TransferGpConfig {
            lengthscales: vec![0.15],
            signal_var: 1.0,
            lambda: 1e-12,
            noise_source: 1e-4,
            noise_target: 1e-4,
        };
        // Source deliberately misleading (negated function).
        let mut bad_source = source_dense();
        for y in &mut bad_source.y {
            *y = -*y;
        }
        let tgp = TransferGp::fit(bad_source, target_sparse(0.0), cfg_zero.clone()).unwrap();
        let alone = TransferGp::fit(TaskData::default(), target_sparse(0.0), cfg_zero).unwrap();
        let q = [0.5];
        let (m1, _) = tgp.predict(&q).unwrap();
        let (m2, _) = alone.predict(&q).unwrap();
        assert!((m1 - m2).abs() < 1e-6, "λ≈0 must neutralize the source");
    }

    #[test]
    fn per_task_standardization_absorbs_scale_shift() {
        // Source outputs 100× larger than target: shape transfers anyway.
        let mut scaled_source = source_dense();
        for y in &mut scaled_source.y {
            *y *= 100.0;
        }
        let cfg = TransferGpConfig {
            lengthscales: vec![0.15],
            signal_var: 1.0,
            lambda: 0.95,
            noise_source: 1e-4,
            noise_target: 1e-4,
        };
        let tgp = TransferGp::fit(scaled_source, target_sparse(0.0), cfg).unwrap();
        let (m, _) = tgp.predict(&[0.2]).unwrap();
        assert!((m - f(0.2)).abs() < 0.25, "mean {m} vs {}", f(0.2));
    }

    #[test]
    fn rejects_empty_target_and_mismatches() {
        let cfg = TransferGpConfig::default_for_dim(1);
        assert!(TransferGp::fit(source_dense(), TaskData::default(), cfg.clone()).is_err());
        let bad_dim = TaskData::new(vec![vec![0.1, 0.2]], vec![1.0]);
        assert!(TransferGp::fit(TaskData::default(), bad_dim, cfg.clone()).is_err());
        let ragged = TaskData::new(vec![vec![0.1]], vec![1.0, 2.0]);
        assert!(TransferGp::fit(TaskData::default(), ragged, cfg).is_err());
    }

    #[test]
    fn likelihood_prefers_true_lambda() {
        // Target is an exact copy of the source function: high λ should
        // explain the joint data better than λ ≈ 0.
        let mk = |lambda: f64| TransferGpConfig {
            lengthscales: vec![0.15],
            signal_var: 1.0,
            lambda,
            noise_source: 1e-3,
            noise_target: 1e-3,
        };
        let high = TransferGp::fit(source_dense(), target_sparse(0.0), mk(0.95)).unwrap();
        let low = TransferGp::fit(source_dense(), target_sparse(0.0), mk(1e-6)).unwrap();
        assert!(high.log_marginal_likelihood() > low.log_marginal_likelihood());
    }

    #[test]
    fn condition_on_matches_full_refit() {
        let cfg = TransferGpConfig {
            lengthscales: vec![0.2],
            signal_var: 1.0,
            lambda: 0.9,
            noise_source: 1e-3,
            noise_target: 1e-3,
        };
        // Fit on a prefix, condition on the rest, compare against a
        // from-scratch fit of everything.
        let full_target = target_sparse(0.1);
        let prefix = TaskData::new(full_target.x[..2].to_vec(), full_target.y[..2].to_vec());
        let mut incremental = TransferGp::fit(source_dense(), prefix, cfg.clone()).unwrap();
        incremental
            .condition_on(&full_target.x[2..], &full_target.y[2..])
            .unwrap();
        let fresh = TransferGp::fit(source_dense(), full_target, cfg).unwrap();
        assert_eq!(incremental.target_len(), fresh.target_len());
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-10 * b.abs().max(1.0);
        for q in [[0.0], [0.22], [0.5], [0.77], [1.0]] {
            let (mi, vi) = incremental.predict_latent(&q).unwrap();
            let (mf, vf) = fresh.predict_latent(&q).unwrap();
            assert!(close(mi, mf), "mean at {q:?}: {mi} vs full refit {mf}");
            assert!(close(vi, vf), "variance at {q:?}: {vi} vs full refit {vf}");
        }
        assert!(close(
            incremental.log_marginal_likelihood(),
            fresh.log_marginal_likelihood()
        ));
        assert!(close(
            incremental.log_conditional_likelihood(),
            fresh.log_conditional_likelihood()
        ));
    }

    #[test]
    fn condition_on_validates_and_handles_empty_batches() {
        let cfg = TransferGpConfig::default_for_dim(1);
        let mut model = TransferGp::fit(source_dense(), target_sparse(0.0), cfg).unwrap();
        let before_len = model.target_len();
        // Empty batch: no-op.
        model.condition_on(&[], &[]).unwrap();
        assert_eq!(model.target_len(), before_len);
        // Mismatched lengths / dimensions / non-finite values are
        // rejected without touching the model.
        assert!(model.condition_on(&[vec![0.5]], &[]).is_err());
        assert!(model.condition_on(&[vec![0.5, 0.5]], &[1.0]).is_err());
        assert!(model.condition_on(&[vec![f64::NAN]], &[1.0]).is_err());
        assert!(model.condition_on(&[vec![0.5]], &[f64::INFINITY]).is_err());
        assert_eq!(model.target_len(), before_len);
    }

    #[test]
    fn condition_on_works_without_source() {
        let cfg = TransferGpConfig::default_for_dim(1);
        let mut model =
            TransferGp::fit(TaskData::default(), target_sparse(0.0), cfg.clone()).unwrap();
        model.condition_on(&[vec![0.5]], &[f(0.5)]).unwrap();
        let full = TaskData::new(
            vec![vec![0.05], vec![0.35], vec![0.65], vec![0.95], vec![0.5]],
            vec![f(0.05), f(0.35), f(0.65), f(0.95), f(0.5)],
        );
        let fresh = TransferGp::fit(TaskData::default(), full, cfg).unwrap();
        let (mi, vi) = model.predict(&[0.3]).unwrap();
        let (mf, vf) = fresh.predict(&[0.3]).unwrap();
        assert!((mi - mf).abs() <= 1e-10 * mf.abs().max(1.0));
        assert!((vi - vf).abs() <= 1e-10 * vf.abs().max(1.0));
    }

    #[test]
    fn batch_prediction_is_bitwise_identical_to_scalar() {
        let tgp = TransferGp::fit(
            source_dense(),
            target_sparse(0.1),
            TransferGpConfig::default_for_dim(1),
        )
        .unwrap();
        let queries: Vec<Vec<f64>> = (0..23).map(|i| vec![i as f64 / 22.0]).collect();
        let latent = tgp.predict_latent_batch(&queries).unwrap();
        let noisy = tgp.predict_batch(&queries).unwrap();
        for (q, query) in queries.iter().enumerate() {
            let (ms, vs) = tgp.predict_latent(query).unwrap();
            assert_eq!(latent[q].0, ms, "latent mean #{q}");
            assert_eq!(latent[q].1, vs, "latent variance #{q}");
            let (mn, vn) = tgp.predict(query).unwrap();
            assert_eq!(noisy[q].0, mn, "noisy mean #{q}");
            assert_eq!(noisy[q].1, vn, "noisy variance #{q}");
        }
        // Chunking cannot change results.
        let halves: Vec<(f64, f64)> = queries
            .chunks(5)
            .flat_map(|c| tgp.predict_latent_batch(c).unwrap())
            .collect();
        assert_eq!(halves, latent);
        // Empty and invalid input handling.
        assert!(tgp.predict_latent_batch(&[]).unwrap().is_empty());
        assert!(tgp.predict_latent_batch(&[vec![0.1, 0.2]]).is_err());
    }

    #[test]
    fn block_size_is_invariant_bit_for_bit() {
        let tgp = TransferGp::fit(
            source_dense(),
            target_sparse(0.1),
            TransferGpConfig::default_for_dim(1),
        )
        .unwrap();
        let queries: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0]).collect();
        let reference = tgp.predict_latent_batch(&queries).unwrap();
        for block in [1, 3, 64, 256, 1000] {
            let got = tgp
                .predict_latent_batch_with_block(&queries, block)
                .unwrap();
            assert_eq!(got, reference, "latent block {block} drifted");
            let noisy = tgp.predict_batch_with_block(&queries, block).unwrap();
            let noisy_ref = tgp.predict_batch(&queries).unwrap();
            assert_eq!(noisy, noisy_ref, "noisy block {block} drifted");
        }
        // Block 0 is rejected, not looped forever.
        assert!(tgp.predict_latent_batch_with_block(&queries, 0).is_err());
        assert!(tgp.predict_batch_with_block(&queries, 0).is_err());
    }

    #[test]
    fn subset_predictor_with_all_points_matches_exact() {
        let tgp = TransferGp::fit(
            source_dense(),
            target_sparse(0.1),
            TransferGpConfig::default_for_dim(1),
        )
        .unwrap();
        let full = tgp.source_len() + tgp.target_len();
        let sod = tgp.subset_predictor(full + 10).unwrap();
        assert_eq!(sod.subset_size(), full);
        assert_eq!(sod.train_size(), full);
        // Same conditioning set (re-ordered): same posterior up to
        // permutation round-off.
        for q in [[0.0], [0.17], [0.5], [0.83], [1.0]] {
            let (me, ve) = tgp.predict_latent(&q).unwrap();
            let (ms, vs) = sod.predict_latent(&q).unwrap();
            assert!((me - ms).abs() < 1e-7, "mean at {q:?}: {me} vs {ms}");
            assert!((ve - vs).abs() < 1e-7, "var at {q:?}: {ve} vs {vs}");
        }
    }

    #[test]
    fn subset_variance_dominates_exact_variance() {
        let tgp = TransferGp::fit(
            source_dense(),
            target_sparse(0.1),
            TransferGpConfig::default_for_dim(1),
        )
        .unwrap();
        let sod = tgp.subset_predictor(8).unwrap();
        assert_eq!(sod.subset_size(), 8);
        for i in 0..40 {
            let q = [i as f64 / 39.0];
            let (_, ve) = tgp.predict_latent(&q).unwrap();
            let (ms, vs) = sod.predict_latent(&q).unwrap();
            assert!(
                vs >= ve - 1e-9,
                "subset variance {vs} below exact {ve} at {q:?}"
            );
            // Mean error stays inside the subset's own uncertainty.
            let (me, _) = tgp.predict_latent(&q).unwrap();
            assert!(
                (ms - me).abs() <= 3.0 * vs.sqrt() + 1e-9,
                "mean error {} exceeds 3σ_sod {}",
                (ms - me).abs(),
                3.0 * vs.sqrt()
            );
        }
    }

    #[test]
    fn subset_predictor_is_deterministic_and_blocked() {
        let tgp = TransferGp::fit(
            source_dense(),
            target_sparse(0.1),
            TransferGpConfig::default_for_dim(1),
        )
        .unwrap();
        let a = tgp.subset_predictor(12).unwrap();
        let b = tgp.subset_predictor(12).unwrap();
        let queries: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let pa = a.predict_latent_batch_with_block(&queries, 7).unwrap();
        let pb = b.predict_latent_batch_with_block(&queries, 256).unwrap();
        assert_eq!(pa, pb, "subset path not deterministic/chunk-invariant");
        // Scalar path agrees bit-for-bit with the batch path.
        for (q, query) in queries.iter().enumerate() {
            assert_eq!(a.predict_latent(query).unwrap(), pa[q]);
        }
        let (mn, vn) = a.predict(&queries[3]).unwrap();
        assert_eq!(mn, pa[3].0);
        assert!(vn > pa[3].1, "predict adds observation noise");
        // Invalid inputs.
        assert!(a.predict_latent(&[0.1, 0.2]).is_err());
        assert!(a.predict_latent_batch_with_block(&queries, 0).is_err());
        assert!(tgp.subset_predictor(0).is_err());
        assert!(format!("{a:?}").contains("SubsetPredictor"));
    }

    #[test]
    fn parallel_predict_is_bitwise_worker_and_block_invariant() {
        let tgp = TransferGp::fit(
            source_dense(),
            target_sparse(0.1),
            TransferGpConfig::default_for_dim(1),
        )
        .unwrap();
        let queries: Vec<Vec<f64>> = (0..53).map(|i| vec![i as f64 / 52.0]).collect();
        let reference = tgp.predict_latent_batch(&queries).unwrap();
        for block in [1, 3, 7, 53, 200] {
            for workers in [1, 2, 4, 8] {
                let got = tgp
                    .predict_latent_batch_par(&queries, block, workers)
                    .unwrap();
                assert_eq!(got, reference, "block {block} workers {workers} drifted");
            }
        }
        let sod = tgp.subset_predictor(12).unwrap();
        let sod_ref = sod.predict_latent_batch_with_block(&queries, 256).unwrap();
        for workers in [1, 2, 4, 8] {
            let got = sod.predict_latent_batch_par(&queries, 5, workers).unwrap();
            assert_eq!(got, sod_ref, "subset workers {workers} drifted");
        }
        // Validation still applies on the parallel entry points.
        assert!(tgp.predict_latent_batch_par(&queries, 0, 4).is_err());
        assert!(tgp
            .predict_latent_batch_par(&[vec![0.1, 0.2]], 8, 4)
            .is_err());
        assert!(sod.predict_latent_batch_par(&queries, 0, 4).is_err());
        assert!(tgp.predict_latent_batch_par(&[], 8, 4).unwrap().is_empty());
    }

    #[test]
    fn cached_predict_is_bitwise_identical_across_conditioning() {
        let cfg = TransferGpConfig {
            lengthscales: vec![0.2],
            signal_var: 1.0,
            lambda: 0.9,
            noise_source: 1e-3,
            noise_target: 1e-3,
        };
        let mut model = TransferGp::fit(source_dense(), target_sparse(0.1), cfg).unwrap();
        let queries: Vec<Vec<f64>> = (0..41).map(|i| vec![i as f64 / 40.0]).collect();
        let ids: Vec<u64> = (0..queries.len() as u64).collect();
        let mut cache = PredictCache::new();

        // Sweep 1: all misses. Must match the uncached path bit for bit.
        cache.begin_sweep();
        let got = model
            .predict_latent_batch_cached(&ids, &queries, 7, 4, &mut cache)
            .unwrap();
        let scratch = model.predict_latent_batch(&queries).unwrap();
        assert_eq!(got, scratch, "all-miss sweep drifted from scratch");
        assert_eq!(cache.len(), queries.len());

        // Condition on a few points, then sweep again: all hits (tail
        // path). Still bitwise identical to from-scratch on the extended
        // model, at every worker count (the persistent `cache` is
        // consumed by worker count 1 and rebuilt identically each round:
        // same (seed, q) state, same bits).
        model
            .condition_on(&[vec![0.11], vec![0.77]], &[f(0.11) + 0.1, f(0.77) + 0.1])
            .unwrap();
        let scratch = model.predict_latent_batch(&queries).unwrap();
        for workers in [1, 2, 4, 8] {
            cache.begin_sweep();
            let got = model
                .predict_latent_batch_cached(&ids, &queries, 7, workers, &mut cache)
                .unwrap();
            assert_eq!(got, scratch, "hit sweep (workers {workers}) drifted");
        }

        // A subset of candidates (evictions) plus new ones (misses) mixes
        // hit/miss within chunks; still exact.
        let sub_ids: Vec<u64> = ids.iter().copied().step_by(3).collect();
        let sub_q: Vec<Vec<f64>> = queries.iter().cloned().step_by(3).collect();
        cache.begin_sweep();
        let got = model
            .predict_latent_batch_cached(&sub_ids, &sub_q, 4, 2, &mut cache)
            .unwrap();
        let scratch = model.predict_latent_batch(&sub_q).unwrap();
        assert_eq!(got, scratch, "mixed sweep drifted");
        cache.begin_sweep();
        assert_eq!(cache.len(), sub_ids.len(), "untouched entries must evict");

        // Validation.
        assert!(model
            .predict_latent_batch_cached(&ids[..3], &queries, 7, 2, &mut cache)
            .is_err());
        assert!(model
            .predict_latent_batch_cached(&ids, &queries, 0, 2, &mut cache)
            .is_err());
    }

    #[test]
    fn refit_changes_epoch_and_clears_cache() {
        let cfg = TransferGpConfig::default_for_dim(1);
        let mut model = TransferGp::fit(source_dense(), target_sparse(0.1), cfg.clone()).unwrap();
        let epoch0 = model.fit_epoch();
        let queries: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 / 8.0]).collect();
        let ids: Vec<u64> = (0..9).collect();
        let mut cache = PredictCache::new();
        cache.begin_sweep();
        model
            .predict_latent_batch_cached(&ids, &queries, 4, 1, &mut cache)
            .unwrap();
        assert_eq!(cache.len(), 9);

        // Incremental conditioning preserves the epoch.
        model.condition_on(&[vec![0.5]], &[f(0.5) + 0.1]).unwrap();
        assert_eq!(model.fit_epoch(), epoch0);

        // A full refit gets a fresh epoch, and the next cached sweep
        // against it starts from scratch yet still matches exactly.
        let refit = TransferGp::fit(
            source_dense(),
            TaskData::new((*model.x_target).clone(), model.y_target.clone()),
            cfg,
        )
        .unwrap();
        assert_ne!(refit.fit_epoch(), epoch0);
        cache.begin_sweep();
        let got = refit
            .predict_latent_batch_cached(&ids, &queries, 4, 1, &mut cache)
            .unwrap();
        let scratch = refit.predict_latent_batch(&queries).unwrap();
        assert_eq!(got, scratch, "post-refit sweep drifted");
    }

    #[test]
    fn accessors() {
        let tgp = TransferGp::fit(
            source_dense(),
            target_sparse(0.1),
            TransferGpConfig::default_for_dim(1),
        )
        .unwrap();
        assert_eq!(tgp.source_len(), 30);
        assert_eq!(tgp.target_len(), 4);
        assert!((tgp.lambda() - 0.8).abs() < 1e-12);
        let dbg = format!("{tgp:?}");
        assert!(dbg.contains("TransferGp"));
    }
}

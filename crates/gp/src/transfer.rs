use linalg::{Cholesky, Matrix};

use crate::kernel::{Kernel, SquaredExponential, Task, TransferKernel};
use crate::standardize::Standardizer;
use crate::{GpError, Result};

/// Training data of one task: inputs (unit-cube encoded parameter
/// configurations) and observed outputs (one QoR metric).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskData {
    /// Input points.
    pub x: Vec<Vec<f64>>,
    /// Observed outputs, parallel to `x`.
    pub y: Vec<f64>,
}

impl TaskData {
    /// Creates task data from parallel input/output lists.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<f64>) -> Self {
        TaskData { x, y }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when the task has no observations.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Hyper-parameters of a [`TransferGp`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransferGpConfig {
    /// ARD lengthscales of the shared base kernel.
    pub lengthscales: Vec<f64>,
    /// Signal variance of the base kernel (standardized output space).
    pub signal_var: f64,
    /// Cross-task correlation factor `λ = 2(1/(1+a))^b − 1 ∈ (−1, 1]`.
    pub lambda: f64,
    /// Source-task observation noise variance `β_s⁻¹` (standardized).
    pub noise_source: f64,
    /// Target-task observation noise variance `β_t⁻¹` (standardized).
    pub noise_target: f64,
}

impl TransferGpConfig {
    /// A reasonable default for unit-cube inputs: moderately smooth,
    /// strong positive transfer.
    pub fn default_for_dim(dim: usize) -> Self {
        TransferGpConfig {
            lengthscales: vec![0.4; dim.max(1)],
            signal_var: 1.0,
            lambda: 0.8,
            noise_source: 1e-3,
            noise_target: 1e-3,
        }
    }
}

/// The two-task transfer Gaussian process of PPATuner §3.1 (Eq. 8).
///
/// The joint prior over source and target observations uses the transfer
/// kernel `K̃` (Eq. 7) plus the per-task noise matrix
/// `Λ = diag(β_s⁻¹ I_N, β_t⁻¹ I_M)`. Inference for a target-task query is
/// standard GP inference against the joint training set:
///
/// `μ(x) = k(x, X)ᵀ (K̃ + Λ)⁻¹ y`,
/// `σ²(x) = k(x, x) + β_t⁻¹ − k(x, X)ᵀ (K̃ + Λ)⁻¹ k(x, X)`.
///
/// Outputs are standardized **per task**, so a source design with a
/// different output scale (e.g. 3× the power) still transfers its shape.
///
/// # Example
///
/// ```
/// use gp::{TransferGp, TransferGpConfig, TaskData};
///
/// # fn main() -> Result<(), gp::GpError> {
/// // Source: dense observations of f; target: few observations of a
/// // shifted copy of f.
/// let f = |x: f64| (5.0 * x).sin();
/// let source = TaskData::new(
///     (0..25).map(|i| vec![i as f64 / 24.0]).collect(),
///     (0..25).map(|i| f(i as f64 / 24.0)).collect(),
/// );
/// let target = TaskData::new(
///     vec![vec![0.1], vec![0.5], vec![0.9]],
///     vec![f(0.1) + 0.2, f(0.5) + 0.2, f(0.9) + 0.2],
/// );
/// let tgp = TransferGp::fit(source, target, TransferGpConfig::default_for_dim(1))?;
/// let (mean, var) = tgp.predict(&[0.3])?;
/// assert!((mean - (f(0.3) + 0.2)).abs() < 0.3);
/// assert!(var >= 0.0);
/// # Ok(())
/// # }
/// ```
pub struct TransferGp {
    kernel: TransferKernel<SquaredExponential>,
    x_source: Vec<Vec<f64>>,
    x_target: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Cholesky,
    std_target: Standardizer,
    noise_target: f64,
    z_joint: Vec<f64>,
    /// Log marginal likelihood of the source block alone (0 when empty).
    source_lml: f64,
    /// Diagonal jitter that `Cholesky::new_with_jitter` had to add to the
    /// joint kernel before factorization succeeded (0 when none).
    jitter: f64,
    config: TransferGpConfig,
}

impl TransferGp {
    /// Fits the transfer GP on source + target data.
    ///
    /// The source may be empty, in which case the model degenerates to a
    /// plain GP on the target task (useful for no-transfer ablations).
    ///
    /// # Errors
    ///
    /// - [`GpError::InvalidTrainingData`] when the target task is empty,
    ///   input dimensions disagree, or values are non-finite;
    /// - [`GpError::InvalidHyperparameter`] for out-of-range
    ///   hyper-parameters;
    /// - [`GpError::Factorization`] when the joint kernel matrix cannot be
    ///   factored.
    pub fn fit(source: TaskData, target: TaskData, config: TransferGpConfig) -> Result<Self> {
        if target.is_empty() {
            return Err(GpError::InvalidTrainingData {
                reason: "target task needs at least one observation",
            });
        }
        if source.x.len() != source.y.len() || target.x.len() != target.y.len() {
            return Err(GpError::InvalidTrainingData {
                reason: "x and y lengths differ",
            });
        }
        for v in [config.noise_source, config.noise_target] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(GpError::InvalidHyperparameter {
                    name: "noise",
                    value: v,
                });
            }
        }
        let base = SquaredExponential::new(config.signal_var, config.lengthscales.clone())?;
        let dim = base.dim();
        for row in source.x.iter().chain(&target.x) {
            if row.len() != dim {
                return Err(GpError::DimensionMismatch {
                    expected: dim,
                    got: row.len(),
                });
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(GpError::InvalidTrainingData {
                    reason: "training inputs must be finite",
                });
            }
        }
        if source.y.iter().chain(&target.y).any(|v| !v.is_finite()) {
            return Err(GpError::InvalidTrainingData {
                reason: "training outputs must be finite",
            });
        }
        let kernel = TransferKernel::with_lambda(base, config.lambda)?;

        // Per-task standardization.
        let std_source = if source.is_empty() {
            Standardizer::identity()
        } else {
            Standardizer::fit(&source.y)
        };
        let std_target = Standardizer::fit(&target.y);
        let n = source.len();
        let m = target.len();
        let mut z_joint = Vec::with_capacity(n + m);
        z_joint.extend(source.y.iter().map(|&v| std_source.transform(v)));
        z_joint.extend(target.y.iter().map(|&v| std_target.transform(v)));

        // Joint kernel matrix K̃ + Λ.
        let task_of = |i: usize| if i < n { Task::Source } else { Task::Target };
        let point_of = |i: usize| -> &[f64] {
            if i < n {
                &source.x[i]
            } else {
                &target.x[i - n]
            }
        };
        let mut k = Matrix::from_fn(n + m, n + m, |i, j| {
            kernel.eval_task(point_of(i), task_of(i), point_of(j), task_of(j))
        });
        for i in 0..(n + m) {
            let noise = if i < n {
                config.noise_source
            } else {
                config.noise_target
            };
            k[(i, i)] += noise;
        }
        let (chol, jitter) = Cholesky::new_with_jitter(&k, 1e-10, 12)?;
        let alpha = chol.solve_vec(&z_joint)?;

        // Source-block marginal likelihood, for the conditional objective.
        let source_lml = if n == 0 {
            0.0
        } else {
            let k_ss = k.submatrix(0, n, 0, n);
            let (chol_s, _) = Cholesky::new_with_jitter(&k_ss, 1e-10, 12)?;
            let z_s = &z_joint[..n];
            let alpha_s = chol_s.solve_vec(z_s)?;
            -0.5 * linalg::vecops::dot(z_s, &alpha_s)
                - 0.5 * chol_s.log_det()
                - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
        };

        Ok(TransferGp {
            kernel,
            x_source: source.x,
            x_target: target.x,
            alpha,
            chol,
            std_target,
            noise_target: config.noise_target,
            z_joint,
            source_lml,
            jitter,
            config,
        })
    }

    /// Number of source observations.
    pub fn source_len(&self) -> usize {
        self.x_source.len()
    }

    /// Number of target observations.
    pub fn target_len(&self) -> usize {
        self.x_target.len()
    }

    /// The cross-task factor λ in use.
    pub fn lambda(&self) -> f64 {
        self.kernel.lambda()
    }

    /// Diagonal jitter added so the joint kernel's Cholesky factorization
    /// succeeded (0 when the matrix was well-conditioned as-is). Useful as
    /// a conditioning diagnostic in traces.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// The hyper-parameter configuration in use.
    pub fn config(&self) -> &TransferGpConfig {
        &self.config
    }

    /// Predictive mean and variance for a **target-task** query, in the
    /// target task's natural units (Eq. 8). The variance includes the
    /// target observation noise `β_t⁻¹`, i.e. it predicts a tool
    /// measurement, not the latent function.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::DimensionMismatch`] for queries of the wrong
    /// dimension.
    pub fn predict(&self, x: &[f64]) -> Result<(f64, f64)> {
        let (mean, var_latent) = self.predict_latent(x)?;
        Ok((
            mean,
            var_latent + self.std_target.inverse_var(self.noise_target),
        ))
    }

    /// Predictive mean and **latent-function** variance (no observation
    /// noise) for a target-task query. This is the variance the tuner's
    /// uncertainty regions use: it can shrink below the tool-noise floor
    /// as evidence accumulates, so classification converges.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::DimensionMismatch`] for queries of the wrong
    /// dimension.
    pub fn predict_latent(&self, x: &[f64]) -> Result<(f64, f64)> {
        if x.len() != self.kernel.base().dim() {
            return Err(GpError::DimensionMismatch {
                expected: self.kernel.base().dim(),
                got: x.len(),
            });
        }
        let mut k_star = Vec::with_capacity(self.x_source.len() + self.x_target.len());
        for xi in &self.x_source {
            k_star.push(self.kernel.eval_task(xi, Task::Source, x, Task::Target));
        }
        for xi in &self.x_target {
            k_star.push(self.kernel.eval_task(xi, Task::Target, x, Task::Target));
        }
        let mean_z = linalg::vecops::dot(&k_star, &self.alpha);
        let v = self.chol.solve_lower_only(&k_star)?;
        let c = self.kernel.eval_task(x, Task::Target, x, Task::Target);
        let var_z = (c - linalg::vecops::dot(&v, &v)).max(0.0);
        Ok((
            self.std_target.inverse(mean_z),
            self.std_target.inverse_var(var_z),
        ))
    }

    /// Batch prediction for target-task queries.
    ///
    /// # Errors
    ///
    /// Fails on the first dimension mismatch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Result<Vec<(f64, f64)>> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Log marginal likelihood of the joint (standardized) data.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.z_joint.len() as f64;
        let fit = -0.5 * linalg::vecops::dot(&self.z_joint, &self.alpha);
        let complexity = -0.5 * self.chol.log_det();
        fit + complexity - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Log marginal likelihood of the **target** data conditioned on the
    /// source data, `log p(y_T | y_S, θ) = log p(y_T, y_S) − log p(y_S)`.
    ///
    /// This is the training objective the paper prescribes ("learned by
    /// maximizing the marginal likelihood of data of the target task"):
    /// it rewards hyper-parameters for predicting the *target* well given
    /// the source, instead of compromising them to also explain source
    /// regions the target never visits. Equals the plain target marginal
    /// likelihood when the source is empty.
    pub fn log_conditional_likelihood(&self) -> f64 {
        self.log_marginal_likelihood() - self.source_lml
    }
}

impl std::fmt::Debug for TransferGp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransferGp")
            .field("n_source", &self.x_source.len())
            .field("n_target", &self.x_target.len())
            .field("lambda", &self.kernel.lambda())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(x: f64) -> f64 {
        (5.0 * x).sin()
    }

    fn source_dense() -> TaskData {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| f(p[0])).collect();
        TaskData::new(x, y)
    }

    fn target_sparse(shift: f64) -> TaskData {
        let pts = [0.05, 0.35, 0.65, 0.95];
        TaskData::new(
            pts.iter().map(|&p| vec![p]).collect(),
            pts.iter().map(|&p| f(p) + shift).collect(),
        )
    }

    #[test]
    fn transfer_beats_target_only_gp() {
        let cfg = TransferGpConfig {
            lengthscales: vec![0.15],
            signal_var: 1.0,
            lambda: 0.95,
            noise_source: 1e-4,
            noise_target: 1e-4,
        };
        let with_source = TransferGp::fit(source_dense(), target_sparse(0.0), cfg.clone()).unwrap();
        let without_source = TransferGp::fit(TaskData::default(), target_sparse(0.0), cfg).unwrap();
        // Error at a point far from target observations but covered by the
        // source.
        let q = [0.2];
        let truth = f(0.2);
        let e_with = (with_source.predict(&q).unwrap().0 - truth).abs();
        let e_without = (without_source.predict(&q).unwrap().0 - truth).abs();
        assert!(
            e_with < e_without,
            "transfer {e_with} should beat no-transfer {e_without}"
        );
    }

    #[test]
    fn transfer_reduces_uncertainty() {
        let cfg = TransferGpConfig {
            lengthscales: vec![0.15],
            signal_var: 1.0,
            lambda: 0.95,
            noise_source: 1e-4,
            noise_target: 1e-4,
        };
        let with_source = TransferGp::fit(source_dense(), target_sparse(0.0), cfg.clone()).unwrap();
        let without_source = TransferGp::fit(TaskData::default(), target_sparse(0.0), cfg).unwrap();
        let q = [0.2];
        assert!(with_source.predict(&q).unwrap().1 < without_source.predict(&q).unwrap().1);
    }

    #[test]
    fn lambda_zero_ignores_source() {
        let cfg_zero = TransferGpConfig {
            lengthscales: vec![0.15],
            signal_var: 1.0,
            lambda: 1e-12,
            noise_source: 1e-4,
            noise_target: 1e-4,
        };
        // Source deliberately misleading (negated function).
        let mut bad_source = source_dense();
        for y in &mut bad_source.y {
            *y = -*y;
        }
        let tgp = TransferGp::fit(bad_source, target_sparse(0.0), cfg_zero.clone()).unwrap();
        let alone = TransferGp::fit(TaskData::default(), target_sparse(0.0), cfg_zero).unwrap();
        let q = [0.5];
        let (m1, _) = tgp.predict(&q).unwrap();
        let (m2, _) = alone.predict(&q).unwrap();
        assert!((m1 - m2).abs() < 1e-6, "λ≈0 must neutralize the source");
    }

    #[test]
    fn per_task_standardization_absorbs_scale_shift() {
        // Source outputs 100× larger than target: shape transfers anyway.
        let mut scaled_source = source_dense();
        for y in &mut scaled_source.y {
            *y *= 100.0;
        }
        let cfg = TransferGpConfig {
            lengthscales: vec![0.15],
            signal_var: 1.0,
            lambda: 0.95,
            noise_source: 1e-4,
            noise_target: 1e-4,
        };
        let tgp = TransferGp::fit(scaled_source, target_sparse(0.0), cfg).unwrap();
        let (m, _) = tgp.predict(&[0.2]).unwrap();
        assert!((m - f(0.2)).abs() < 0.25, "mean {m} vs {}", f(0.2));
    }

    #[test]
    fn rejects_empty_target_and_mismatches() {
        let cfg = TransferGpConfig::default_for_dim(1);
        assert!(TransferGp::fit(source_dense(), TaskData::default(), cfg.clone()).is_err());
        let bad_dim = TaskData::new(vec![vec![0.1, 0.2]], vec![1.0]);
        assert!(TransferGp::fit(TaskData::default(), bad_dim, cfg.clone()).is_err());
        let ragged = TaskData::new(vec![vec![0.1]], vec![1.0, 2.0]);
        assert!(TransferGp::fit(TaskData::default(), ragged, cfg).is_err());
    }

    #[test]
    fn likelihood_prefers_true_lambda() {
        // Target is an exact copy of the source function: high λ should
        // explain the joint data better than λ ≈ 0.
        let mk = |lambda: f64| TransferGpConfig {
            lengthscales: vec![0.15],
            signal_var: 1.0,
            lambda,
            noise_source: 1e-3,
            noise_target: 1e-3,
        };
        let high = TransferGp::fit(source_dense(), target_sparse(0.0), mk(0.95)).unwrap();
        let low = TransferGp::fit(source_dense(), target_sparse(0.0), mk(1e-6)).unwrap();
        assert!(high.log_marginal_likelihood() > low.log_marginal_likelihood());
    }

    #[test]
    fn accessors() {
        let tgp = TransferGp::fit(
            source_dense(),
            target_sparse(0.1),
            TransferGpConfig::default_for_dim(1),
        )
        .unwrap();
        assert_eq!(tgp.source_len(), 30);
        assert_eq!(tgp.target_len(), 4);
        assert!((tgp.lambda() - 0.8).abs() < 1e-12);
        let dbg = format!("{tgp:?}");
        assert!(dbg.contains("TransferGp"));
    }
}

//! Offline drop-in subset of the [`serde`](https://serde.rs) API.
//!
//! The build environment of this workspace has no access to crates.io, so
//! the serialization surface the codebase uses is reimplemented here under
//! the same names: the [`Serialize`] / [`Deserialize`] traits, and derive
//! macros of the same names (re-exported from the in-tree `serde_derive`
//! proc-macro crate).
//!
//! Instead of serde's zero-copy visitor architecture, this shim uses a
//! simple self-describing [`Value`] tree as the interchange format —
//! `Serialize` renders into it, `Deserialize` reads out of it, and
//! `serde_json` (the sibling shim) converts it to and from JSON text. This
//! trades some performance for a fraction of the complexity, which is the
//! right trade for the artifact and telemetry files this workspace writes.
//!
//! The derive macros produce serde's *externally tagged* representation
//! for enums (`"Variant"`, `{"Variant": value}`, `{"Variant": {...}}`,
//! `{"Variant": [..]}`), so JSON emitted by the shim matches what upstream
//! serde + serde_json would produce for the same types.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing interchange tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The member of an object by key, or `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The contained f64, converting integer values.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The contained unsigned integer, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The contained signed integer, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The contained string slice, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The contained array, or `None`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The contained bool, or `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// An "expected X, got Y" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError {
            message: format!("expected {what}, got {}", got.kind()),
        }
    }

    /// A "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        DeError {
            message: format!("missing field `{name}`"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the interchange tree.
pub trait Serialize {
    /// The [`Value`] representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the interchange tree.
pub trait Deserialize: Sized {
    /// Parses a [`Value`] into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------------ primitives

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", value))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_serde_uint_wide {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(v) => Value::I64(v),
                    Err(_) => Value::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", value))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_serde_uint_wide!(u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        // JSON has no non-finite literals, so writers (including the
        // serde_json shim) emit `null` for NaN/±inf. Reading `null` back
        // as NaN keeps such streams parseable instead of erroring; the
        // sign/infinity distinction is lost, as with real serde_json.
        if matches!(value, Value::Null) {
            return Ok(f64::NAN);
        }
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if matches!(value, Value::Null) {
            return Ok(f32::NAN);
        }
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("bool", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Deserialize> Deserialize for BTreeMap<String, T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), T::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let arr = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", value))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected array of length {expected}, got {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::F64(self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(42u64.to_value(), Value::I64(42));
        assert_eq!(u64::MAX.to_value(), Value::U64(u64::MAX));
        assert_eq!(u64::from_value(&Value::U64(u64::MAX)).unwrap(), u64::MAX);
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert_eq!(f64::from_value(&Value::I64(2)).unwrap(), 2.0);
        assert_eq!(bool::from_value(&Value::Bool(true)).unwrap(), true);
        assert_eq!(String::from_value(&Value::Str("hi".into())).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u8, 2.5f64, "x".to_string());
        assert_eq!(<(u8, f64, String)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u8> = None;
        assert_eq!(o.to_value(), Value::Null);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&Value::I64(9)).unwrap(), Some(9));
    }

    #[test]
    fn null_reads_back_as_nan_float() {
        // Writers emit `null` for non-finite floats; the float impls must
        // accept it so traces containing NaN/±inf metrics stay parseable.
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
        assert!(f32::from_value(&Value::Null).unwrap().is_nan());
        let v: Vec<f64> = Vec::from_value(&Value::Array(vec![
            Value::F64(1.5),
            Value::Null,
            Value::I64(2),
        ]))
        .unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 1.5);
        assert!(v[1].is_nan());
        assert_eq!(v[2], 2.0);
        // Integers still reject null.
        assert!(u32::from_value(&Value::Null).is_err());
    }

    #[test]
    fn object_get() {
        let v = Value::Object(vec![("a".into(), Value::I64(1))]);
        assert_eq!(v.get("a"), Some(&Value::I64(1)));
        assert_eq!(v.get("b"), None);
    }
}

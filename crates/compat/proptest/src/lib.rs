//! Offline drop-in subset of the [`proptest`](https://proptest-rs.github.io)
//! API.
//!
//! The build environment has no access to crates.io, so the property-test
//! surface this workspace uses is reimplemented here: the [`proptest!`]
//! macro, `prop_assert*` macros, range/tuple/collection [`Strategy`]
//! values, `.prop_map`, and [`ProptestConfig`].
//!
//! Differences from upstream, chosen deliberately for an offline CI:
//!
//! - **Deterministic**: each case's RNG is seeded from the test name and
//!   case index, so failures reproduce exactly across runs and machines
//!   (upstream records failing seeds in a regressions file instead).
//! - **No shrinking**: a failing case reports its case index and message;
//!   inputs are regenerable from the seed rather than minimized.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (`proptest::test_runner::ProptestConfig` subset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier GP/tuner
        // properties fast while still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives the cases of one property test (used by the [`proptest!`]
/// expansion; not part of the upstream API surface).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The deterministic RNG of one case: seeded from the test name and
    /// case index, so every run regenerates identical inputs.
    pub fn rng_for_case(&self, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= u64::from(case);
        h = h.wrapping_mul(0x100000001b3);
        StdRng::seed_from_u64(h)
    }

    /// Panics with context when a case failed.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) when `result` is an error.
    pub fn check(&self, case: u32, result: Result<(), TestCaseError>) {
        if let Err(e) = result {
            panic!(
                "proptest property `{}` failed at case {case}/{}: {e}",
                self.name, self.config.cases
            );
        }
    }
}

/// A generator of test inputs (`proptest::strategy::Strategy` subset).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields clones of one value (`proptest::prelude::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Sizes accepted by [`prop::collection::vec`]: an exact length, or an
/// (inclusive or exclusive) length range.
pub trait SizeBound {
    /// Picks a concrete length.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeBound for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeBound for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeBound for RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

pub mod prop {
    //! The `proptest::prelude::prop` namespace.

    pub mod collection {
        //! Collection strategies.

        use super::super::{SizeBound, Strategy};
        use rand::rngs::StdRng;

        /// A `Vec` of values from `element`, with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy, B: SizeBound>(element: S, size: B) -> VecStrategy<S, B> {
            VecStrategy { element, size }
        }

        /// The strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, B> {
            element: S,
            size: B,
        }

        impl<S: Strategy, B: SizeBound> Strategy for VecStrategy<S, B> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Supports the upstream form used here:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///     #[test]
///     fn property(x in 0.0f64..1.0, v in prop::collection::vec(0u8..4, 1..5)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let runner = $crate::TestRunner::new(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                runner.check(case, result);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_generation() {
        let runner = TestRunner::new(ProptestConfig::with_cases(4), "t");
        let s = prop::collection::vec(0.0f64..1.0, 5);
        let a = s.generate(&mut runner.rng_for_case(0));
        let b = s.generate(&mut runner.rng_for_case(0));
        assert_eq!(a, b);
        let c = s.generate(&mut runner.rng_for_case(1));
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.5f64..2.0, n in 3usize..7,
                                 pair in (0u64..10, -1.0f64..1.0)) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!(pair.0 < 10);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(0u8..4, 1..5),
                                    w in prop::collection::vec(0.0f64..1.0, 3)) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn prop_map_applies(v in prop::collection::vec(1.0f64..2.0, 4)
                                .prop_map(|v| v.into_iter().sum::<f64>())) {
            prop_assert!((4.0..8.0).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..100) {
            prop_assert!(x < 100);
            prop_assert_ne!(x, 1000);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}

//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment of this workspace has no access to crates.io, so
//! the handful of `rand` features the codebase uses are reimplemented here
//! behind the same module paths (`rand::Rng`, `rand::SeedableRng`,
//! `rand::rngs::StdRng`, `rand::seq::SliceRandom`). The generator is a
//! SplitMix64-seeded xoshiro256** — fast, well distributed, and
//! deterministic per seed, which is all the reproduction relies on. Streams
//! differ from the upstream `StdRng` (ChaCha12), so seeds produce different
//! (but equally reproducible) sample sequences.
//!
//! Only the API surface exercised by this workspace is provided: anything
//! else is a deliberate compile error rather than a silent behavioral
//! difference.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can produce a uniformly distributed value of themselves from
/// a generator — the shim's stand-in for `Standard: Distribution<T>`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value of type `T` can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` this workspace uses.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value (`rng.gen::<f64>()` etc.).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Creates a generator from OS-provided entropy (here: the current
    /// time, which is entropy enough for non-cryptographic sampling).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic per seed; not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpointing. Deviation from
        /// upstream `rand` (which hides generator state): the workspace's
        /// checkpoint/resume support serializes the RNG position so a
        /// resumed tuning run can verify it rejoined the original stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`]. The restored generator continues the exact
        /// sample sequence of the captured one.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (`rand::seq` subset).

    use super::Rng;

    /// Slice shuffling and random element selection.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() as usize) % self.len()])
            }
        }
    }
}

/// A convenience generator seeded from the clock (`rand::thread_rng`
/// stand-in; not actually thread-local, every call creates a fresh
/// generator).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..0.5);
            assert!((-2.0..0.5).contains(&f));
            let i = rng.gen_range(20i64..52);
            assert!((20..52).contains(&i));
            let u = rng.gen_range(0u8..4);
            assert!(u < 4);
            let n = rng.gen_range(3usize..=3);
            assert_eq!(n, 3);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_and_bool() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((350..650).contains(&heads), "{heads}");
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let snapshot = a.state();
        let mut b = StdRng::from_state(snapshot);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let r: &mut StdRng = &mut rng;
        assert!((0.0..1.0).contains(&draw(r)));
    }
}

//! Offline drop-in subset of the [`criterion`](https://bheisler.github.io/criterion.rs)
//! benchmarking API.
//!
//! The build environment has no access to crates.io, so the small slice of
//! criterion this workspace's benches use is reimplemented here: groups,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], `Bencher::iter`,
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical engine, each benchmark is warmed up
//! briefly and then timed over a fixed wall-clock window; the mean, best,
//! and worst per-iteration times are printed to stderr. That is enough to
//! compare orders of magnitude and spot regressions by eye, which is what
//! the in-repo micro benches are for.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (stable-Rust variant).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    measure_for: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few unrecorded calls to populate caches/allocator.
        let warm_until = Instant::now() + self.measure_for / 10;
        while Instant::now() < warm_until {
            black_box(f());
        }
        let measure_until = Instant::now() + self.measure_for;
        while Instant::now() < measure_until || self.samples.is_empty() {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(id: &str, measure_for: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        measure_for,
    };
    f(&mut b);
    let mut line = format!("bench {id:<40}");
    if b.samples.is_empty() {
        let _ = write!(line, " (no samples — did the bench call iter()?)");
    } else {
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let best = *b.samples.iter().min().expect("non-empty");
        let worst = *b.samples.iter().max().expect("non-empty");
        let _ = write!(
            line,
            " mean {:>10}  best {:>10}  worst {:>10}  ({} iters)",
            fmt_duration(mean),
            fmt_duration(best),
            fmt_duration(worst),
            b.samples.len()
        );
    }
    eprintln!("{line}");
}

/// An identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter (used inside groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.full),
            self.criterion.measure_for,
            |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.criterion.measure_for,
            f,
        );
        self
    }

    /// Finishes the group (upstream flushes reports here; a no-op shim).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short window: these benches run in CI as a smoke test, not
            // for publication-grade statistics.
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure_for = d;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.measure_for, f);
        self
    }
}

/// Declares a group of benchmark functions (`criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` (`criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default().measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = tiny();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = tiny();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}

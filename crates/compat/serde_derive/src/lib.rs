//! Offline drop-in `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! macros for the in-tree `serde` shim.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate is written against the compiler's built-in `proc_macro` API alone
//! (no `syn`/`quote`). It hand-parses the item definition — enough for the
//! non-generic structs and enums this workspace derives on — and emits
//! impls of the shim's `Serialize`/`Deserialize` traits that reproduce
//! serde's default JSON shapes:
//!
//! - named struct → object of its fields
//! - newtype struct → the inner value, transparently
//! - tuple struct → array of its fields
//! - unit enum variant → `"Variant"`
//! - newtype enum variant → `{"Variant": value}`
//! - tuple enum variant → `{"Variant": [..]}`
//! - struct enum variant → `{"Variant": {..}}`
//!
//! The only field attribute honoured is `#[serde(default)]`: on
//! deserialize a missing key yields `Default::default()` instead of a
//! `missing_field` error (serialization is unchanged — the field is
//! always written). Other `#[serde(...)]` arguments are ignored.
//!
//! Unsupported shapes (generic items, unions) produce a clear
//! compile-time error instead of silently wrong output.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier plus whether it carries
/// `#[serde(default)]` (missing keys then deserialize to
/// `Default::default()` instead of erroring).
struct Field {
    name: String,
    default: bool,
}

/// Shape of one enum variant.
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Skips attribute tokens (`#[...]` / `#![...]`) starting at `i`.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == '!' {
                            i += 1;
                        }
                    }
                }
                // The bracketed attribute body.
                i += 1;
            }
            _ => break,
        }
    }
    i
}

/// Returns true if the bracketed attribute body (the tokens inside
/// `#[...]`) is a `serde(...)` list containing the bare ident `default`.
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let is_serde =
        matches!(tokens.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return false;
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return false;
    };
    if args.delimiter() != Delimiter::Parenthesis {
        return false;
    }
    args.stream()
        .into_iter()
        .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
}

/// Like [`skip_attributes`], but also reports whether any of the skipped
/// attributes was `#[serde(default)]`.
fn scan_field_attributes(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '!' {
                        i += 1;
                    }
                }
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Bracket && attr_is_serde_default(g) {
                        default = true;
                    }
                }
                // The bracketed attribute body.
                i += 1;
            }
            _ => break,
        }
    }
    (i, default)
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts the fields of a tuple-struct/-variant body: top-level commas
/// (outside `<...>`) plus one, with trailing commas ignored.
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut fields = 1usize;
    for (k, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if k + 1 == tokens.len() {
                        // trailing comma
                    } else {
                        fields += 1;
                    }
                }
                _ => {}
            }
        }
    }
    fields
}

/// Parses the named fields of a braced struct/variant body.
fn named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, default) = scan_field_attributes(&tokens, i);
        i = next;
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type up to the next top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Parses the variants of a braced enum body.
fn enum_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(tuple_arity(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(named_fields(g)?)
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    if keyword != "struct" && keyword != "enum" {
        return Err(format!("cannot derive for `{keyword}` items"));
    }
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the offline serde shim cannot derive for generic item `{name}`"
            ));
        }
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if keyword == "enum" {
                Ok(Item::Enum {
                    name,
                    variants: enum_variants(g)?,
                })
            } else {
                Ok(Item::NamedStruct {
                    name,
                    fields: named_fields(g)?,
                })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::TupleStruct {
                name,
                arity: tuple_arity(g),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
        other => Err(format!("unsupported item body: {other:?}")),
    }
}

// ------------------------------------------------------------- Serialize

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                                 ::std::string::String::from({vname:?})),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Serialize::to_value(f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                                     ::std::string::String::from({vname:?}), \
                                     ::serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let binds = binds.join(", ");
                            let vals: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                     ::std::string::String::from({vname:?}), \
                                     ::serde::Value::Object(::std::vec![{}]))]),",
                                vals.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

// ----------------------------------------------------------- Deserialize

fn named_fields_ctor(fields: &[Field], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|field| {
            let f = &field.name;
            if field.default {
                format!(
                    "{f}: match {source}.get({f:?}) {{\
                         ::std::option::Option::Some(v) => \
                             ::serde::Deserialize::from_value(v)?,\
                         ::std::option::Option::None => \
                             ::std::default::Default::default(),\
                     }}"
                )
            } else {
                format!(
                    "{f}: ::serde::Deserialize::from_value({source}.get({f:?})\
                         .ok_or_else(|| ::serde::DeError::missing_field({f:?}))?)?"
                )
            }
        })
        .collect();
    inits.join(", ")
}

fn tuple_ctor(arity: usize, arr: &str) -> String {
    let inits: Vec<String> = (0..arity)
        .map(|k| format!("::serde::Deserialize::from_value(&{arr}[{k}])?"))
        .collect();
    inits.join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::NamedStruct { name, fields } => format!(
            "match value {{\n\
                 ::serde::Value::Object(_) => Ok({name} {{ {} }}),\n\
                 other => Err(::serde::DeError::expected(\"object\", other)),\n\
             }}",
            named_fields_ctor(fields, "value")
        ),
        Item::TupleStruct { name, arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Item::TupleStruct { name, arity } => format!(
            "{{\n\
                 let arr = value.as_array()\
                     .ok_or_else(|| ::serde::DeError::expected(\"array\", value))?;\n\
                 if arr.len() != {arity} {{\n\
                     return Err(::serde::DeError::custom(::std::format!(\n\
                         \"expected array of length {arity}, got {{}}\", arr.len())));\n\
                 }}\n\
                 Ok({name}({}))\n\
             }}",
            tuple_ctor(*arity, "arr")
        ),
        Item::UnitStruct { name } => format!(
            "match value {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 other => Err(::serde::DeError::expected(\"null\", other)),\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => Ok({name}::{vname}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => unreachable!(),
                        Shape::Tuple(1) => format!(
                            "{vname:?} => Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(inner)?)),"
                        ),
                        Shape::Tuple(n) => format!(
                            "{vname:?} => {{\n\
                                 let arr = inner.as_array()\
                                     .ok_or_else(|| ::serde::DeError::expected(\
                                         \"array\", inner))?;\n\
                                 if arr.len() != {n} {{\n\
                                     return Err(::serde::DeError::custom(\
                                         ::std::format!(\"expected array of length {n}, \
                                          got {{}}\", arr.len())));\n\
                                 }}\n\
                                 Ok({name}::{vname}({}))\n\
                             }}",
                            tuple_ctor(*n, "arr")
                        ),
                        Shape::Named(fields) => format!(
                            "{vname:?} => match inner {{\n\
                                 ::serde::Value::Object(_) => Ok({name}::{vname} {{ {} }}),\n\
                                 other => Err(::serde::DeError::expected(\"object\", other)),\n\
                             }},",
                            named_fields_ctor(fields, "inner")
                        ),
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => Err(::serde::DeError::custom(::std::format!(\n\
                             \"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::DeError::custom(::std::format!(\n\
                                 \"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::expected(\"enum\", other)),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    let name = match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

//! Offline drop-in subset of the [`serde_json`] API.
//!
//! Converts between JSON text and the in-tree serde shim's
//! [`Value`](serde::Value) tree: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`to_value`], [`from_value`], and the [`json!`] macro.
//!
//! Numbers print with Rust's shortest round-trip formatting (the upstream
//! crate's `float_roundtrip` behavior); non-finite floats serialize as
//! `null`, as upstream does.
//!
//! [`serde_json`]: https://crates.io/crates/serde_json

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error raised by JSON conversion in either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Convenience alias matching `serde_json::Result`.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Renders `value` into its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for this shim's data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for this shim's data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    from_value(&value)
}

/// Builds a [`Value`] literal. Supports the upstream macro's common forms:
/// `null`, array literals, object literals with string keys, and arbitrary
/// `Serialize` expressions as leaves.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// --------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Rust's Display for f64 is shortest-round-trip; keep an
                // explicit fraction so integers stay recognizably floats.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&n.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled; BMP only,
                            // which covers everything this workspace writes.
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.error("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 code point.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "name": "target1",
            "runs": 42,
            "hv": 0.125,
            "tags": ["a", "b"],
            "nested": { "ok": true, "none": json!(null) },
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = json!({ "a": [1, 2] });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\""), "{text}");
    }

    #[test]
    fn floats_keep_precision() {
        let x = 0.1f64 + 0.2;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, x);
        // Whole floats keep a fraction marker.
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn large_u64_roundtrips() {
        let v = u64::MAX;
        let text = to_string(&v).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<f64>("\"not a number\"").is_err());
    }

    #[test]
    fn unicode_strings() {
        let s = "δ-domination ✓";
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}

//! Stagewise least-squares gradient boosting.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::tree::{RegressionTree, TreeParams};
use crate::{BoostError, Result};

/// Hyper-parameters of [`GradientBoosting`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbmParams {
    /// Number of boosting stages (trees).
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Fraction of rows sampled (without replacement) per stage.
    pub subsample: f64,
    /// Limits of each stage's tree.
    pub tree: TreeParams,
}

impl Default for GbmParams {
    fn default() -> Self {
        GbmParams {
            n_trees: 80,
            learning_rate: 0.1,
            subsample: 0.8,
            tree: TreeParams::default(),
        }
    }
}

/// A gradient-boosted regression-tree ensemble for least-squares loss.
///
/// Each stage fits a shallow [`RegressionTree`] to the current residuals
/// on a row subsample and adds it with shrinkage — the classic GBM
/// recipe. Feature importances aggregate split gains across all trees
/// (normalized to sum to 1), which is what the FIST baseline's
/// importance-guided sampling consumes.
///
/// # Example
///
/// ```
/// use boost::{GradientBoosting, GbmParams};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), boost::BoostError> {
/// let x: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 79.0, 0.5]).collect();
/// let y: Vec<f64> = x.iter().map(|p| 3.0 * p[0]).collect();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let model = GradientBoosting::fit(&x, &y, GbmParams::default(), &mut rng)?;
/// let imp = model.feature_importances();
/// assert!(imp[0] > 0.9); // all signal is in feature 0
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoosting {
    base: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
    dim: usize,
}

impl GradientBoosting {
    /// Fits the ensemble to `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`BoostError::InvalidTrainingData`] for empty/inconsistent
    /// data and [`BoostError::InvalidParameter`] for out-of-range options.
    pub fn fit<R: Rng + ?Sized>(
        x: &[Vec<f64>],
        y: &[f64],
        params: GbmParams,
        rng: &mut R,
    ) -> Result<Self> {
        if x.is_empty() || x.len() != y.len() {
            return Err(BoostError::InvalidTrainingData {
                reason: "need non-empty x and y of equal length",
            });
        }
        if params.n_trees == 0 {
            return Err(BoostError::InvalidParameter {
                name: "n_trees",
                value: 0.0,
            });
        }
        if !(params.learning_rate > 0.0 && params.learning_rate <= 1.0) {
            return Err(BoostError::InvalidParameter {
                name: "learning_rate",
                value: params.learning_rate,
            });
        }
        if !(params.subsample > 0.0 && params.subsample <= 1.0) {
            return Err(BoostError::InvalidParameter {
                name: "subsample",
                value: params.subsample,
            });
        }
        let dim = x[0].len();
        let n = x.len();
        let base = y.iter().sum::<f64>() / n as f64;
        let mut residuals: Vec<f64> = y.iter().map(|&v| v - base).collect();
        let mut trees = Vec::with_capacity(params.n_trees);
        let sample_size = ((n as f64 * params.subsample).round() as usize).clamp(1, n);
        let mut all: Vec<usize> = (0..n).collect();

        for _ in 0..params.n_trees {
            all.shuffle(rng);
            let chosen = &all[..sample_size];
            let xs: Vec<Vec<f64>> = chosen.iter().map(|&i| x[i].clone()).collect();
            let rs: Vec<f64> = chosen.iter().map(|&i| residuals[i]).collect();
            let tree = RegressionTree::fit(&xs, &rs, params.tree)?;
            for (i, r) in residuals.iter_mut().enumerate() {
                *r -= params.learning_rate * tree.predict(&x[i]);
            }
            trees.push(tree);
        }
        Ok(GradientBoosting {
            base,
            learning_rate: params.learning_rate,
            trees,
            dim,
        })
    }

    /// Predicts one point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Predicts a batch of points.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Normalized feature importances (split-gain shares, summing to 1;
    /// all-zero when no split was ever made).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.dim];
        for tree in &self.trees {
            tree.accumulate_importances(&mut imp);
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Number of boosting stages.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fits_smooth_function_better_than_mean() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 99.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (6.0 * p[0]).sin()).collect();
        let model = GradientBoosting::fit(&x, &y, GbmParams::default(), &mut rng()).unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let mse_model: f64 = x
            .iter()
            .zip(&y)
            .map(|(xi, yi)| (model.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / y.len() as f64;
        let mse_mean: f64 = y.iter().map(|yi| (mean - yi).powi(2)).sum::<f64>() / y.len() as f64;
        assert!(mse_model < 0.2 * mse_mean, "{mse_model} vs {mse_mean}");
    }

    #[test]
    fn importances_identify_signal_feature() {
        let x: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![(i % 11) as f64, i as f64 / 119.0, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|p| 5.0 * p[1]).collect();
        let model = GradientBoosting::fit(&x, &y, GbmParams::default(), &mut rng()).unwrap();
        let imp = model.feature_importances();
        assert!(imp[1] > 0.8, "{imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_target_gives_zero_importances() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 20];
        let model = GradientBoosting::fit(&x, &y, GbmParams::default(), &mut rng()).unwrap();
        assert!(model.feature_importances().iter().all(|&v| v == 0.0));
        assert_eq!(model.predict(&[5.0]), 3.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let a = GradientBoosting::fit(&x, &y, GbmParams::default(), &mut rng()).unwrap();
        let b = GradientBoosting::fit(&x, &y, GbmParams::default(), &mut rng()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validates_parameters() {
        let x = vec![vec![1.0]];
        let y = vec![1.0];
        let mut r = rng();
        let mut bad = |p: GbmParams| GradientBoosting::fit(&x, &y, p, &mut r).is_err();
        assert!(bad(GbmParams {
            n_trees: 0,
            ..Default::default()
        }));
        assert!(bad(GbmParams {
            learning_rate: 0.0,
            ..Default::default()
        }));
        assert!(bad(GbmParams {
            learning_rate: 1.5,
            ..Default::default()
        }));
        assert!(bad(GbmParams {
            subsample: 0.0,
            ..Default::default()
        }));
        assert!(GradientBoosting::fit(&[], &[], GbmParams::default(), &mut r).is_err());
    }

    #[test]
    fn batch_matches_pointwise() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| p[0]).collect();
        let model = GradientBoosting::fit(&x, &y, GbmParams::default(), &mut rng()).unwrap();
        let batch = model.predict_batch(&x);
        for (xi, b) in x.iter().zip(&batch) {
            assert_eq!(*b, model.predict(xi));
        }
        assert_eq!(model.n_trees(), GbmParams::default().n_trees);
        assert_eq!(model.dim(), 1);
    }
}

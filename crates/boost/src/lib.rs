//! Gradient-boosted regression trees, from scratch.
//!
//! The ASPDAC'20 baseline (FIST) reimplemented in the `baselines` crate needs an
//! ensemble boosting-tree regressor with **feature importances** for its
//! importance-guided sampling. This crate provides:
//!
//! - [`RegressionTree`]: a CART regression tree (variance-reduction
//!   splits, depth/leaf-size limits);
//! - [`GradientBoosting`]: stagewise least-squares boosting with
//!   shrinkage and row subsampling, plus aggregated feature importances.
//!
//! # Example
//!
//! ```
//! use boost::{GradientBoosting, GbmParams};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), boost::BoostError> {
//! let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 59.0]).collect();
//! let y: Vec<f64> = x.iter().map(|p| if p[0] > 0.5 { 2.0 } else { 0.0 }).collect();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let model = GradientBoosting::fit(&x, &y, GbmParams::default(), &mut rng)?;
//! assert!((model.predict(&[0.9]) - 2.0).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gbm;
mod tree;

pub use error::BoostError;
pub use gbm::{GbmParams, GradientBoosting};
pub use tree::{RegressionTree, TreeParams};

/// Convenience alias for results returned by this crate.
pub type Result<T, E = BoostError> = std::result::Result<T, E>;

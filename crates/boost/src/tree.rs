//! CART regression trees with variance-reduction splits.

use crate::{BoostError, Result};

/// Growth limits of a [`RegressionTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a node needs before it may split.
    pub min_samples_split: usize,
    /// Minimum samples each child must receive.
    pub min_samples_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 4,
            min_samples_split: 8,
            min_samples_leaf: 3,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Total squared-error reduction achieved by this split (for
        /// feature importances).
        gain: f64,
        left: usize,
        right: usize,
    },
}

/// A binary regression tree fit by greedy variance-reduction splitting.
///
/// # Example
///
/// ```
/// use boost::{RegressionTree, TreeParams};
///
/// # fn main() -> Result<(), boost::BoostError> {
/// let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
/// let tree = RegressionTree::fit(&x, &y, TreeParams::default())?;
/// assert!((tree.predict(&[3.0]) - 1.0).abs() < 1e-9);
/// assert!((tree.predict(&[15.0]) - 5.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    dim: usize,
}

impl RegressionTree {
    /// Fits a tree to `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`BoostError::InvalidTrainingData`] when the data is empty
    /// or inconsistent, or [`BoostError::InvalidParameter`] for degenerate
    /// limits.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: TreeParams) -> Result<Self> {
        if x.is_empty() {
            return Err(BoostError::InvalidTrainingData {
                reason: "need at least one sample",
            });
        }
        if x.len() != y.len() {
            return Err(BoostError::InvalidTrainingData {
                reason: "x and y lengths differ",
            });
        }
        let dim = x[0].len();
        if dim == 0 || x.iter().any(|r| r.len() != dim) {
            return Err(BoostError::InvalidTrainingData {
                reason: "samples must share a non-zero dimension",
            });
        }
        if params.min_samples_leaf == 0 {
            return Err(BoostError::InvalidParameter {
                name: "min_samples_leaf",
                value: 0.0,
            });
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            dim,
        };
        let idx: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, y, idx, 0, &params);
        Ok(tree)
    }

    /// Grows a subtree over `idx`; returns the node id.
    fn grow(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: Vec<usize>,
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        let make_leaf = |tree: &mut RegressionTree| {
            tree.nodes.push(Node::Leaf { value: mean });
            tree.nodes.len() - 1
        };
        if depth >= params.max_depth || idx.len() < params.min_samples_split {
            return make_leaf(self);
        }
        match best_split(x, y, &idx, params.min_samples_leaf) {
            None => make_leaf(self),
            Some(split) => {
                let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
                for &i in &idx {
                    if x[i][split.feature] <= split.threshold {
                        left_idx.push(i);
                    } else {
                        right_idx.push(i);
                    }
                }
                // Reserve the split slot, then grow children.
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let left = self.grow(x, y, left_idx, depth + 1, params);
                let right = self.grow(x, y, right_idx, depth + 1, params);
                self.nodes[id] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    gain: split.gain,
                    left,
                    right,
                };
                id
            }
        }
    }

    /// Predicts one point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "query dimension mismatch");
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Accumulates this tree's split gains into `importances`
    /// (length = input dimension).
    pub(crate) fn accumulate_importances(&self, importances: &mut [f64]) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                importances[*feature] += gain.max(0.0);
            }
        }
    }
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// Exhaustive best split over all features and sample-adjacent
/// thresholds; returns `None` when no split satisfies the leaf minimum or
/// improves the squared error.
fn best_split(x: &[Vec<f64>], y: &[f64], idx: &[usize], min_leaf: usize) -> Option<SplitChoice> {
    let n = idx.len();
    let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
    let total_sq: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
    let parent_sse = total_sq - total_sum * total_sum / n as f64;

    let dim = x[idx[0]].len();
    let mut best: Option<SplitChoice> = None;
    let mut order: Vec<usize> = idx.to_vec();
    #[allow(clippy::needless_range_loop)] // `feature` is a column index, not a row.
    for feature in 0..dim {
        order.sort_by(|&a, &b| {
            x[a][feature]
                .partial_cmp(&x[b][feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for k in 0..(n - 1) {
            let i = order[k];
            left_sum += y[i];
            left_sq += y[i] * y[i];
            let n_left = k + 1;
            let n_right = n - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let xv = x[order[k]][feature];
            let xn = x[order[k + 1]][feature];
            if xn <= xv {
                continue; // no threshold separates equal values
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / n_left as f64)
                + (right_sq - right_sum * right_sum / n_right as f64);
            let gain = parent_sse - sse;
            if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.gain) {
                best = Some(SplitChoice {
                    feature,
                    threshold: 0.5 * (xv + xn),
                    gain,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_step_function() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| if i < 15 { -1.0 } else { 3.0 }).collect();
        let t = RegressionTree::fit(&x, &y, TreeParams::default()).unwrap();
        assert!((t.predict(&[2.0]) + 1.0).abs() < 1e-9);
        assert!((t.predict(&[20.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![4.0; 10];
        let t = RegressionTree::fit(&x, &y, TreeParams::default()).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[100.0]), 4.0);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let t = RegressionTree::fit(
            &x,
            &y,
            TreeParams {
                max_depth: 1,
                min_samples_split: 2,
                min_samples_leaf: 1,
            },
        )
        .unwrap();
        // Depth 1 → at most one split + two leaves.
        assert!(t.node_count() <= 3);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let x: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let y = vec![0.0, 0.0, 0.0, 10.0];
        let t = RegressionTree::fit(
            &x,
            &y,
            TreeParams {
                max_depth: 5,
                min_samples_split: 2,
                min_samples_leaf: 2,
            },
        )
        .unwrap();
        // The only useful split (3 vs 1) violates min_leaf = 2; the 2-2
        // split is chosen instead or the node stays a leaf.
        for node in 0..t.node_count() {
            if let Node::Split { threshold, .. } = t.nodes[node] {
                assert!((threshold - 1.5).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 1 is pure noise; feature 0 carries the signal.
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 1.0 }).collect();
        let t = RegressionTree::fit(&x, &y, TreeParams::default()).unwrap();
        let mut imp = vec![0.0; 2];
        t.accumulate_importances(&mut imp);
        assert!(imp[0] > imp[1]);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(RegressionTree::fit(&[], &[], TreeParams::default()).is_err());
        assert!(RegressionTree::fit(&[vec![1.0]], &[1.0, 2.0], TreeParams::default()).is_err());
        assert!(RegressionTree::fit(&[vec![]], &[1.0], TreeParams::default()).is_err());
        let bad = TreeParams {
            min_samples_leaf: 0,
            ..Default::default()
        };
        assert!(RegressionTree::fit(&[vec![1.0]], &[1.0], bad).is_err());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn predict_checks_dimension() {
        let t = RegressionTree::fit(&[vec![1.0]], &[1.0], TreeParams::default()).unwrap();
        t.predict(&[1.0, 2.0]);
    }
}

use std::error::Error;
use std::fmt;

/// Errors produced when fitting tree models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BoostError {
    /// Training data is empty or inconsistent.
    InvalidTrainingData {
        /// Description of the problem.
        reason: &'static str,
    },
    /// A fitting parameter is out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for BoostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoostError::InvalidTrainingData { reason } => {
                write!(f, "invalid training data: {reason}")
            }
            BoostError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
        }
    }
}

impl Error for BoostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!BoostError::InvalidTrainingData { reason: "empty" }
            .to_string()
            .is_empty());
        assert!(BoostError::InvalidParameter {
            name: "learning_rate",
            value: -1.0
        }
        .to_string()
        .contains("learning_rate"));
    }
}

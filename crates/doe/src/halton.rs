//! Halton low-discrepancy sequences.
//!
//! A deterministic alternative to Latin-hypercube sampling: successive
//! points fill the unit cube quasi-uniformly, so a benchmark can be
//! *extended* without regenerating it (LHS stratification only holds for
//! a fixed sample count).

use crate::{Config, ParamSpace};

/// The first 16 primes — Halton bases for up to 16 dimensions.
const PRIMES: [u32; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// Radical inverse of `n` in base `b` — the core of the Halton sequence.
fn radical_inverse(mut n: u64, b: u64) -> f64 {
    let mut inv = 0.0;
    let mut denom = 1.0;
    while n > 0 {
        denom *= b as f64;
        inv += (n % b) as f64 / denom;
        n /= b;
    }
    inv
}

/// A Halton sequence generator over a [`ParamSpace`].
///
/// # Example
///
/// ```
/// use doe::{Halton, ParamDef, ParamSpace};
///
/// # fn main() -> Result<(), doe::DoeError> {
/// let space = ParamSpace::new(vec![
///     ParamDef::float("x", 0.0, 1.0)?,
///     ParamDef::int("k", 1, 8)?,
/// ])?;
/// let mut seq = Halton::new(&space)?;
/// let first_ten: Vec<_> = (0..10).map(|_| seq.next_config()).collect();
/// assert_eq!(first_ten.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Halton {
    space: ParamSpace,
    /// 1-based index (index 0 is the degenerate all-zeros point).
    index: u64,
}

impl Halton {
    /// Creates a generator for `space`, starting at the first point.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DoeError::InvalidSpace`] when the space has more
    /// than 16 dimensions (no Halton base available).
    pub fn new(space: &ParamSpace) -> crate::Result<Self> {
        if space.dim() > PRIMES.len() {
            return Err(crate::DoeError::InvalidSpace {
                reason: "halton supports at most 16 dimensions",
            });
        }
        Ok(Halton {
            space: space.clone(),
            index: 1,
        })
    }

    /// Skips ahead (useful to decorrelate from other consumers).
    pub fn skip(&mut self, n: u64) {
        self.index = self.index.saturating_add(n);
    }

    /// The next unit-cube point.
    pub fn next_point(&mut self) -> Vec<f64> {
        let i = self.index;
        self.index += 1;
        (0..self.space.dim())
            .map(|d| radical_inverse(i, PRIMES[d] as u64))
            .collect()
    }

    /// The next configuration (the unit-cube point decoded into the
    /// space).
    pub fn next_config(&mut self) -> Config {
        let p = self.next_point();
        self.space
            .decode(&p)
            .expect("halton point has space dimension")
    }

    /// Draws `n` configurations.
    pub fn take_configs(&mut self, n: usize) -> Vec<Config> {
        (0..n).map(|_| self.next_config()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamDef;

    fn space(d: usize) -> ParamSpace {
        ParamSpace::new(
            (0..d)
                .map(|i| ParamDef::float(&format!("x{i}"), 0.0, 1.0).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn radical_inverse_base2_matches_known_values() {
        assert_eq!(radical_inverse(1, 2), 0.5);
        assert_eq!(radical_inverse(2, 2), 0.25);
        assert_eq!(radical_inverse(3, 2), 0.75);
        assert_eq!(radical_inverse(4, 2), 0.125);
    }

    #[test]
    fn radical_inverse_base3_matches_known_values() {
        assert!((radical_inverse(1, 3) - 1.0 / 3.0).abs() < 1e-15);
        assert!((radical_inverse(2, 3) - 2.0 / 3.0).abs() < 1e-15);
        assert!((radical_inverse(3, 3) - 1.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn points_stay_in_unit_cube_and_are_distinct() {
        let mut h = Halton::new(&space(5)).unwrap();
        let pts: Vec<Vec<f64>> = (0..50).map(|_| h.next_point()).collect();
        for p in &pts {
            assert!(p.iter().all(|&u| (0.0..1.0).contains(&u)));
        }
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert_ne!(pts[i], pts[j]);
            }
        }
    }

    #[test]
    fn coverage_beats_worst_case() {
        // First 64 base-2 coordinates hit every length-1/8 interval.
        let mut h = Halton::new(&space(1)).unwrap();
        let mut hits = [false; 8];
        for _ in 0..64 {
            let p = h.next_point();
            hits[(p[0] * 8.0) as usize] = true;
        }
        assert!(hits.iter().all(|&b| b));
    }

    #[test]
    fn skip_changes_the_stream() {
        let mut a = Halton::new(&space(2)).unwrap();
        let mut b = Halton::new(&space(2)).unwrap();
        b.skip(10);
        assert_ne!(a.next_point(), b.next_point());
    }

    #[test]
    fn rejects_high_dimensions() {
        assert!(Halton::new(&space(17)).is_err());
        assert!(Halton::new(&space(16)).is_ok());
    }

    #[test]
    fn configs_are_valid() {
        let s = ParamSpace::new(vec![
            ParamDef::float("f", -2.0, 5.0).unwrap(),
            ParamDef::enumeration("e", &["a", "b", "c"]).unwrap(),
            ParamDef::boolean("b"),
        ])
        .unwrap();
        let mut h = Halton::new(&s).unwrap();
        for c in h.take_configs(30) {
            assert!(s.validate(&c).is_ok());
        }
    }
}

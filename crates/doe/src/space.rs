use serde::{Deserialize, Serialize};

use crate::{Config, DoeError, ParamValue, Result};

/// The kind (type and domain) of one tunable tool parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamKind {
    /// A continuous parameter on the closed interval `[min, max]`.
    Float {
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
    /// An integer parameter on the closed interval `[min, max]`.
    Int {
        /// Lower bound (inclusive).
        min: i64,
        /// Upper bound (inclusive).
        max: i64,
    },
    /// An ordered enumeration (e.g. effort levels). The position in
    /// `choices` is the ordinal used for encoding, so list choices from
    /// weakest to strongest where a natural order exists.
    Enum {
        /// The admissible option names, in encoding order.
        choices: Vec<String>,
    },
    /// A boolean switch.
    Bool,
}

/// Definition of one tunable tool parameter: a name plus a [`ParamKind`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    name: String,
    kind: ParamKind,
}

impl ParamDef {
    /// Defines a continuous parameter on `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::InvalidParam`] when the range is empty or
    /// non-finite.
    pub fn float(name: &str, min: f64, max: f64) -> Result<Self> {
        if !(min.is_finite() && max.is_finite()) {
            return Err(DoeError::InvalidParam {
                name: name.to_owned(),
                reason: "bounds must be finite",
            });
        }
        if min >= max {
            return Err(DoeError::InvalidParam {
                name: name.to_owned(),
                reason: "min must be strictly less than max",
            });
        }
        Ok(ParamDef {
            name: name.to_owned(),
            kind: ParamKind::Float { min, max },
        })
    }

    /// Defines an integer parameter on `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::InvalidParam`] when `min >= max`.
    pub fn int(name: &str, min: i64, max: i64) -> Result<Self> {
        if min >= max {
            return Err(DoeError::InvalidParam {
                name: name.to_owned(),
                reason: "min must be strictly less than max",
            });
        }
        Ok(ParamDef {
            name: name.to_owned(),
            kind: ParamKind::Int { min, max },
        })
    }

    /// Defines an enumerated parameter with the given ordered choices.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::InvalidParam`] when fewer than two choices are
    /// given or choices repeat.
    pub fn enumeration(name: &str, choices: &[&str]) -> Result<Self> {
        if choices.len() < 2 {
            return Err(DoeError::InvalidParam {
                name: name.to_owned(),
                reason: "enumeration needs at least two choices",
            });
        }
        for (i, c) in choices.iter().enumerate() {
            if choices[..i].contains(c) {
                return Err(DoeError::InvalidParam {
                    name: name.to_owned(),
                    reason: "enumeration choices must be distinct",
                });
            }
        }
        Ok(ParamDef {
            name: name.to_owned(),
            kind: ParamKind::Enum {
                choices: choices.iter().map(|c| (*c).to_owned()).collect(),
            },
        })
    }

    /// Defines a boolean switch.
    pub fn boolean(name: &str) -> Self {
        ParamDef {
            name: name.to_owned(),
            kind: ParamKind::Bool,
        }
    }

    /// The parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter kind.
    pub fn kind(&self) -> &ParamKind {
        &self.kind
    }

    /// Number of discrete levels, or `None` for continuous parameters.
    pub fn levels(&self) -> Option<usize> {
        match &self.kind {
            ParamKind::Float { .. } => None,
            ParamKind::Int { min, max } => Some((max - min + 1) as usize),
            ParamKind::Enum { choices } => Some(choices.len()),
            ParamKind::Bool => Some(2),
        }
    }

    /// Checks that `value` belongs to this parameter's domain.
    pub fn accepts(&self, value: &ParamValue) -> bool {
        match (&self.kind, value) {
            (ParamKind::Float { min, max }, ParamValue::Float(v)) => {
                v.is_finite() && *v >= *min && *v <= *max
            }
            (ParamKind::Int { min, max }, ParamValue::Int(v)) => *v >= *min && *v <= *max,
            (ParamKind::Enum { choices }, ParamValue::Enum(i)) => *i < choices.len(),
            (ParamKind::Bool, ParamValue::Bool(_)) => true,
            _ => false,
        }
    }

    /// Maps a unit-interval coordinate `u ∈ [0, 1]` to a value in the
    /// parameter's domain (clamping `u` first). Discrete parameters divide
    /// the interval into equal-width bins.
    pub fn value_from_unit(&self, u: f64) -> ParamValue {
        let u = u.clamp(0.0, 1.0);
        match &self.kind {
            ParamKind::Float { min, max } => ParamValue::Float(min + u * (max - min)),
            ParamKind::Int { min, max } => {
                let levels = (max - min + 1) as f64;
                let idx = ((u * levels).floor() as i64).min(max - min);
                ParamValue::Int(min + idx)
            }
            ParamKind::Enum { choices } => {
                let levels = choices.len() as f64;
                let idx = ((u * levels).floor() as usize).min(choices.len() - 1);
                ParamValue::Enum(idx)
            }
            ParamKind::Bool => ParamValue::Bool(u >= 0.5),
        }
    }

    /// Maps a domain value to its canonical unit-interval coordinate
    /// (bin centers for discrete parameters).
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::ConfigMismatch`] when the value does not belong
    /// to this parameter's domain.
    pub fn unit_from_value(&self, value: &ParamValue) -> Result<f64> {
        if !self.accepts(value) {
            return Err(DoeError::ConfigMismatch {
                index: 0,
                reason: "value outside the parameter domain",
            });
        }
        Ok(match (&self.kind, value) {
            (ParamKind::Float { min, max }, ParamValue::Float(v)) => (v - min) / (max - min),
            (ParamKind::Int { min, max }, ParamValue::Int(v)) => {
                let levels = (max - min + 1) as f64;
                ((v - min) as f64 + 0.5) / levels
            }
            (ParamKind::Enum { choices }, ParamValue::Enum(i)) => {
                (*i as f64 + 0.5) / choices.len() as f64
            }
            (ParamKind::Bool, ParamValue::Bool(b)) => {
                if *b {
                    0.75
                } else {
                    0.25
                }
            }
            _ => unreachable!("accepts() filtered mismatched kinds"),
        })
    }
}

/// A typed tool-parameter space: an ordered list of [`ParamDef`]s.
///
/// The order of parameters is significant — it fixes the coordinate order
/// of [`Config`]s and of the unit-cube encoding that surrogate models see.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpace {
    params: Vec<ParamDef>,
}

impl ParamSpace {
    /// Builds a space from an ordered parameter list.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::InvalidSpace`] when the list is empty or names
    /// repeat.
    pub fn new(params: Vec<ParamDef>) -> Result<Self> {
        if params.is_empty() {
            return Err(DoeError::InvalidSpace {
                reason: "space needs at least one parameter",
            });
        }
        for (i, p) in params.iter().enumerate() {
            if params[..i].iter().any(|q| q.name() == p.name()) {
                return Err(DoeError::InvalidSpace {
                    reason: "parameter names must be distinct",
                });
            }
        }
        Ok(ParamSpace { params })
    }

    /// Number of parameters (= encoding dimension).
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Iterates over the parameter definitions in coordinate order.
    pub fn iter(&self) -> std::slice::Iter<'_, ParamDef> {
        self.params.iter()
    }

    /// Borrows the parameter at coordinate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn param(&self, i: usize) -> &ParamDef {
        &self.params[i]
    }

    /// Finds a parameter's coordinate index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name() == name)
    }

    /// Validates that `config` belongs to this space.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::ConfigMismatch`] describing the first violation.
    pub fn validate(&self, config: &Config) -> Result<()> {
        if config.len() != self.dim() {
            return Err(DoeError::ConfigMismatch {
                index: config.len(),
                reason: "configuration arity differs from space dimension",
            });
        }
        for (i, (p, v)) in self.params.iter().zip(config.values()).enumerate() {
            if !p.accepts(v) {
                return Err(DoeError::ConfigMismatch {
                    index: i,
                    reason: "value outside the parameter domain",
                });
            }
        }
        Ok(())
    }

    /// Encodes a configuration as a point in the unit cube `[0, 1]^d`.
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::ConfigMismatch`] when the configuration does not
    /// belong to this space.
    pub fn encode(&self, config: &Config) -> Result<Vec<f64>> {
        self.validate(config)?;
        self.params
            .iter()
            .zip(config.values())
            .enumerate()
            .map(|(i, (p, v))| {
                p.unit_from_value(v).map_err(|_| DoeError::ConfigMismatch {
                    index: i,
                    reason: "value outside the parameter domain",
                })
            })
            .collect()
    }

    /// Decodes a unit-cube point into the nearest valid configuration
    /// (coordinates are clamped to `[0, 1]`, discrete parameters snap to
    /// their bins).
    ///
    /// # Errors
    ///
    /// Returns [`DoeError::DimensionMismatch`] when `point.len() != dim()`.
    pub fn decode(&self, point: &[f64]) -> Result<Config> {
        if point.len() != self.dim() {
            return Err(DoeError::DimensionMismatch {
                expected: self.dim(),
                got: point.len(),
            });
        }
        Ok(Config::new(
            self.params
                .iter()
                .zip(point)
                .map(|(p, &u)| p.value_from_unit(u))
                .collect(),
        ))
    }

    /// Total number of discrete configurations, or `None` if any parameter
    /// is continuous.
    pub fn cardinality(&self) -> Option<usize> {
        self.params
            .iter()
            .map(|p| p.levels())
            .try_fold(1usize, |acc, l| l.and_then(|l| acc.checked_mul(l)))
    }
}

impl<'a> IntoIterator for &'a ParamSpace {
    type Item = &'a ParamDef;
    type IntoIter = std::slice::Iter<'a, ParamDef>;

    fn into_iter(self) -> Self::IntoIter {
        self.params.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::float("density", 0.5, 1.0).unwrap(),
            ParamDef::int("fanout", 25, 50).unwrap(),
            ParamDef::enumeration("effort", &["standard", "express", "extreme"]).unwrap(),
            ParamDef::boolean("uniform"),
        ])
        .unwrap()
    }

    #[test]
    fn builders_validate() {
        assert!(ParamDef::float("x", 1.0, 1.0).is_err());
        assert!(ParamDef::float("x", f64::NAN, 1.0).is_err());
        assert!(ParamDef::int("x", 5, 5).is_err());
        assert!(ParamDef::enumeration("x", &["only"]).is_err());
        assert!(ParamDef::enumeration("x", &["a", "a"]).is_err());
        assert!(ParamSpace::new(vec![]).is_err());
        let dup = ParamSpace::new(vec![ParamDef::boolean("same"), ParamDef::boolean("same")]);
        assert!(dup.is_err());
    }

    #[test]
    fn levels_and_cardinality() {
        let s = space();
        assert_eq!(s.param(0).levels(), None);
        assert_eq!(s.param(1).levels(), Some(26));
        assert_eq!(s.param(2).levels(), Some(3));
        assert_eq!(s.param(3).levels(), Some(2));
        assert_eq!(s.cardinality(), None);
        let discrete = ParamSpace::new(vec![
            ParamDef::int("a", 0, 3).unwrap(),
            ParamDef::boolean("b"),
        ])
        .unwrap();
        assert_eq!(discrete.cardinality(), Some(8));
    }

    #[test]
    fn value_from_unit_covers_domain() {
        let p = ParamDef::int("fanout", 25, 50).unwrap();
        assert_eq!(p.value_from_unit(0.0), ParamValue::Int(25));
        assert_eq!(p.value_from_unit(1.0), ParamValue::Int(50));
        assert_eq!(p.value_from_unit(-3.0), ParamValue::Int(25));
        assert_eq!(p.value_from_unit(9.0), ParamValue::Int(50));
        let e = ParamDef::enumeration("effort", &["a", "b", "c"]).unwrap();
        assert_eq!(e.value_from_unit(0.0), ParamValue::Enum(0));
        assert_eq!(e.value_from_unit(0.5), ParamValue::Enum(1));
        assert_eq!(e.value_from_unit(1.0), ParamValue::Enum(2));
        let b = ParamDef::boolean("flag");
        assert_eq!(b.value_from_unit(0.49), ParamValue::Bool(false));
        assert_eq!(b.value_from_unit(0.5), ParamValue::Bool(true));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = space();
        let c = Config::new(vec![
            ParamValue::Float(0.7),
            ParamValue::Int(30),
            ParamValue::Enum(2),
            ParamValue::Bool(true),
        ]);
        let z = s.encode(&c).unwrap();
        assert_eq!(z.len(), 4);
        assert!(z.iter().all(|&u| (0.0..=1.0).contains(&u)));
        let back = s.decode(&z).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn float_roundtrip_is_exact_at_bounds() {
        let s = ParamSpace::new(vec![ParamDef::float("x", -2.0, 6.0).unwrap()]).unwrap();
        for v in [-2.0, 0.0, 6.0] {
            let c = Config::new(vec![ParamValue::Float(v)]);
            let z = s.encode(&c).unwrap();
            let back = s.decode(&z).unwrap();
            match back.values()[0] {
                ParamValue::Float(got) => assert!((got - v).abs() < 1e-12),
                _ => panic!("kind changed"),
            }
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let s = space();
        let wrong_arity = Config::new(vec![ParamValue::Bool(true)]);
        assert!(matches!(
            s.validate(&wrong_arity).unwrap_err(),
            DoeError::ConfigMismatch { .. }
        ));
        let wrong_kind = Config::new(vec![
            ParamValue::Int(1),
            ParamValue::Int(30),
            ParamValue::Enum(0),
            ParamValue::Bool(false),
        ]);
        assert!(matches!(
            s.validate(&wrong_kind).unwrap_err(),
            DoeError::ConfigMismatch { index: 0, .. }
        ));
        let out_of_range = Config::new(vec![
            ParamValue::Float(0.7),
            ParamValue::Int(100),
            ParamValue::Enum(0),
            ParamValue::Bool(false),
        ]);
        assert!(matches!(
            s.validate(&out_of_range).unwrap_err(),
            DoeError::ConfigMismatch { index: 1, .. }
        ));
    }

    #[test]
    fn decode_checks_dimension() {
        let s = space();
        assert!(matches!(
            s.decode(&[0.5]).unwrap_err(),
            DoeError::DimensionMismatch {
                expected: 4,
                got: 1
            }
        ));
    }

    #[test]
    fn index_of_finds_names() {
        let s = space();
        assert_eq!(s.index_of("effort"), Some(2));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn serde_roundtrip() {
        let s = space();
        let json = serde_json::to_string(&s).unwrap();
        let back: ParamSpace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

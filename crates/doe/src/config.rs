use std::fmt;

use serde::{Deserialize, Serialize};

/// A single parameter value: one coordinate of a [`Config`].
///
/// [`Config`]: crate::Config
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// A continuous value.
    Float(f64),
    /// An integer value.
    Int(i64),
    /// The ordinal of an enumeration choice.
    Enum(usize),
    /// A boolean switch.
    Bool(bool),
}

impl ParamValue {
    /// The contained float, or `None` for other kinds.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            ParamValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained integer, or `None` for other kinds.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained enum ordinal, or `None` for other kinds.
    pub fn as_enum(&self) -> Option<usize> {
        match self {
            ParamValue::Enum(v) => Some(*v),
            _ => None,
        }
    }

    /// The contained boolean, or `None` for other kinds.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// A numeric view of the value, regardless of kind. Used by models that
    /// only care about magnitude (booleans map to 0/1, enums to their
    /// ordinal).
    pub fn to_f64(&self) -> f64 {
        match self {
            ParamValue::Float(v) => *v,
            ParamValue::Int(v) => *v as f64,
            ParamValue::Enum(v) => *v as f64,
            ParamValue::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Enum(v) => write!(f, "#{v}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One concrete tool-parameter configuration: an ordered list of
/// [`ParamValue`]s matching a [`ParamSpace`]'s coordinate order.
///
/// # Example
///
/// ```
/// use doe::{Config, ParamValue};
///
/// let c = Config::new(vec![ParamValue::Float(0.8), ParamValue::Bool(true)]);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.values()[1].as_bool(), Some(true));
/// ```
///
/// [`ParamSpace`]: crate::ParamSpace
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    values: Vec<ParamValue>,
}

impl Config {
    /// Wraps an ordered value list into a configuration.
    pub fn new(values: Vec<ParamValue>) -> Self {
        Config { values }
    }

    /// Number of parameter values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the configuration has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrows the ordered values.
    pub fn values(&self) -> &[ParamValue] {
        &self.values
    }

    /// Consumes the configuration and returns its values.
    pub fn into_values(self) -> Vec<ParamValue> {
        self.values
    }

    /// Numeric view of all coordinates (see [`ParamValue::to_f64`]).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.values.iter().map(ParamValue::to_f64).collect()
    }
}

impl FromIterator<ParamValue> for Config {
    fn from_iter<T: IntoIterator<Item = ParamValue>>(iter: T) -> Self {
        Config::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_kinds() {
        assert_eq!(ParamValue::Float(1.5).as_float(), Some(1.5));
        assert_eq!(ParamValue::Float(1.5).as_int(), None);
        assert_eq!(ParamValue::Int(3).as_int(), Some(3));
        assert_eq!(ParamValue::Enum(2).as_enum(), Some(2));
        assert_eq!(ParamValue::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn to_f64_views() {
        assert_eq!(ParamValue::Float(2.5).to_f64(), 2.5);
        assert_eq!(ParamValue::Int(-3).to_f64(), -3.0);
        assert_eq!(ParamValue::Enum(4).to_f64(), 4.0);
        assert_eq!(ParamValue::Bool(true).to_f64(), 1.0);
        assert_eq!(ParamValue::Bool(false).to_f64(), 0.0);
    }

    #[test]
    fn config_collects_and_displays() {
        let c: Config = vec![ParamValue::Int(1), ParamValue::Bool(false)]
            .into_iter()
            .collect();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.to_string(), "(1, false)");
        assert_eq!(c.to_f64_vec(), vec![1.0, 0.0]);
    }

    #[test]
    fn into_values_returns_storage() {
        let c = Config::new(vec![ParamValue::Enum(7)]);
        assert_eq!(c.into_values(), vec![ParamValue::Enum(7)]);
    }
}

//! Hierarchical bisection cells over an axis-aligned parameter box.
//!
//! An adaptive candidate pool needs a spatial index with three laws:
//! every point of the box belongs to exactly one *leaf* cell, each leaf
//! carries at most one *representative* candidate, and refining (splitting)
//! a leaf is deterministic — longest side first, lowest axis on ties,
//! bisected at the midpoint. [`CellTree`] provides exactly that: a
//! pointer-free arena of axis-aligned cells grown by bisection, built once
//! from an initial candidate set and split on demand by the tuner's
//! refinement rule ("Beyond Grids"-style adaptive discretization).
//!
//! The tree never stores candidate coordinates, only representative
//! *indices*; callers own the candidate list and pass coordinates into
//! [`CellTree::split`] when pushing a representative down one level. This
//! keeps the structure cheap (two `f64` bounds vectors per cell) even for
//! effective pools of millions of points.
//!
//! Containment is half-open on interior faces: a split sends
//! `point[axis] < mid` left and everything else right, so sibling cells
//! never share a point while the box's own upper face stays inside its
//! boundary cells.

use crate::{DoeError, Result};

/// Bisections a single lineage can undergo before the tree refuses to
/// split further. 2⁶⁰ halvings shrink a unit side far below `f64`
/// resolution, so the cap only exists to terminate duplicate-point
/// insertion and runaway refinement deterministically.
const MAX_DEPTH: usize = 60;

#[derive(Debug, Clone)]
struct Cell {
    lo: Vec<f64>,
    hi: Vec<f64>,
    rep: Option<usize>,
    children: Option<(usize, usize)>,
    depth: usize,
}

/// Outcome of one leaf bisection.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// Child cell that inherited the old representative.
    pub kept_child: usize,
    /// The other (initially representative-free) child cell.
    pub new_child: usize,
    /// Center point of `new_child` — the canonical coordinates for the
    /// candidate the caller appends to occupy it.
    pub new_center: Vec<f64>,
}

/// A hierarchical bisection tree over an axis-aligned box.
///
/// # Example
///
/// ```
/// use doe::CellTree;
///
/// let points = vec![vec![0.2, 0.2], vec![0.8, 0.7]];
/// let tree = CellTree::build(&[0.0, 0.0], &[1.0, 1.0], &points).unwrap();
/// // Both points became representatives of distinct leaves.
/// assert_ne!(tree.leaf_of(&points[0]), tree.leaf_of(&points[1]));
/// assert_eq!(tree.rep(tree.leaf_of(&points[0]).unwrap()), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct CellTree {
    cells: Vec<Cell>,
    dim: usize,
    root_volume: f64,
}

impl CellTree {
    /// Builds a tree whose root box is `[lo, hi]` and whose leaves
    /// separate `points` (candidate coordinates, indexed by position).
    ///
    /// Points are pushed down by recursive bisection until each leaf
    /// holds at most one; the leaf's representative is that point's
    /// index. Coincident (or nearly coincident) points that no bisection
    /// within the depth cap can separate share a leaf whose
    /// representative is the lowest index among them.
    ///
    /// # Errors
    ///
    /// [`DoeError::InvalidSpace`] when the box is empty, degenerate, or
    /// non-finite, or a point lies outside it;
    /// [`DoeError::DimensionMismatch`] when a point has the wrong arity.
    pub fn build(lo: &[f64], hi: &[f64], points: &[Vec<f64>]) -> Result<Self> {
        if lo.is_empty() || lo.len() != hi.len() {
            return Err(DoeError::InvalidSpace {
                reason: "cell box bounds must be non-empty and of equal dimension",
            });
        }
        for (&l, &h) in lo.iter().zip(hi) {
            if !(l.is_finite() && h.is_finite() && l < h) {
                return Err(DoeError::InvalidSpace {
                    reason: "cell box bounds must be finite with lo < hi",
                });
            }
        }
        let dim = lo.len();
        for p in points {
            if p.len() != dim {
                return Err(DoeError::DimensionMismatch {
                    expected: dim,
                    got: p.len(),
                });
            }
            if p.iter()
                .zip(lo.iter().zip(hi))
                .any(|(&v, (&l, &h))| !(v.is_finite() && v >= l && v <= h))
            {
                return Err(DoeError::InvalidSpace {
                    reason: "candidate point lies outside the cell box",
                });
            }
        }
        let root_volume = lo.iter().zip(hi).map(|(&l, &h)| h - l).product();
        let mut tree = CellTree {
            cells: vec![Cell {
                lo: lo.to_vec(),
                hi: hi.to_vec(),
                rep: None,
                children: None,
                depth: 0,
            }],
            dim,
            root_volume,
        };
        let idxs: Vec<usize> = (0..points.len()).collect();
        tree.settle(0, idxs, points);
        Ok(tree)
    }

    /// Recursively separates `idxs` (all contained in cell `c`) into
    /// single-representative leaves.
    fn settle(&mut self, c: usize, idxs: Vec<usize>, points: &[Vec<f64>]) {
        match idxs.len() {
            0 => {}
            1 => self.cells[c].rep = Some(idxs[0]),
            _ => {
                let Some((axis, mid)) = self.split_plane(c) else {
                    // Unsplittable: coincident points share this leaf,
                    // lowest index represents it.
                    self.cells[c].rep = idxs.iter().copied().min();
                    return;
                };
                let (left, right) = self.bisect(c, axis, mid);
                let (l_idxs, r_idxs): (Vec<usize>, Vec<usize>) =
                    idxs.into_iter().partition(|&i| points[i][axis] < mid);
                self.settle(left, l_idxs, points);
                self.settle(right, r_idxs, points);
            }
        }
    }

    /// The deterministic split plane of cell `c`: longest side, lowest
    /// axis on ties, bisected at the midpoint. `None` when the cell is at
    /// the depth cap or too thin for the midpoint to strictly separate
    /// its bounds.
    fn split_plane(&self, c: usize) -> Option<(usize, f64)> {
        let cell = &self.cells[c];
        if cell.depth >= MAX_DEPTH {
            return None;
        }
        let axis = (0..self.dim)
            .max_by(|&a, &b| {
                let wa = cell.hi[a] - cell.lo[a];
                let wb = cell.hi[b] - cell.lo[b];
                // Strictly-greater keeps the lowest axis on ties.
                wa.partial_cmp(&wb)
                    .expect("cell widths are finite")
                    .then(b.cmp(&a))
            })
            .expect("cells have at least one axis");
        let mid = 0.5 * (cell.lo[axis] + cell.hi[axis]);
        if mid <= cell.lo[axis] || mid >= cell.hi[axis] {
            return None;
        }
        Some((axis, mid))
    }

    /// Turns leaf `c` into an internal cell with two children split at
    /// `(axis, mid)`; returns their arena indices (left, right).
    fn bisect(&mut self, c: usize, axis: usize, mid: f64) -> (usize, usize) {
        let (lo, hi, depth) = {
            let cell = &self.cells[c];
            (cell.lo.clone(), cell.hi.clone(), cell.depth)
        };
        let mut l_hi = hi.clone();
        l_hi[axis] = mid;
        let mut r_lo = lo.clone();
        r_lo[axis] = mid;
        let left = self.cells.len();
        self.cells.push(Cell {
            lo,
            hi: l_hi,
            rep: None,
            children: None,
            depth: depth + 1,
        });
        let right = self.cells.len();
        self.cells.push(Cell {
            lo: r_lo,
            hi,
            rep: None,
            children: None,
            depth: depth + 1,
        });
        let cell = &mut self.cells[c];
        cell.rep = None;
        cell.children = Some((left, right));
        (left, right)
    }

    /// Splits leaf `cell` whose representative sits at `rep_point`,
    /// moving the representative into the child that contains it. The
    /// other child starts representative-free; the caller appends a
    /// candidate at [`Split::new_center`] and registers it with
    /// [`CellTree::set_rep`].
    ///
    /// Returns `None` when the leaf is unsplittable (depth cap or
    /// degenerate width) — the refinement loop simply skips such cells.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not a leaf, has no representative, or
    /// `rep_point` has the wrong dimension — all caller bugs.
    pub fn split(&mut self, cell: usize, rep_point: &[f64]) -> Option<Split> {
        assert!(
            self.cells[cell].children.is_none(),
            "split target must be a leaf"
        );
        let rep = self.cells[cell]
            .rep
            .expect("split target must have a representative");
        assert_eq!(rep_point.len(), self.dim, "rep_point dimension mismatch");
        let (axis, mid) = self.split_plane(cell)?;
        let (left, right) = self.bisect(cell, axis, mid);
        let (kept, fresh) = if rep_point[axis] < mid {
            (left, right)
        } else {
            (right, left)
        };
        self.cells[kept].rep = Some(rep);
        Some(Split {
            kept_child: kept,
            new_child: fresh,
            new_center: self.center(fresh),
        })
    }

    /// Registers candidate `index` as the representative of the (leaf,
    /// representative-free) cell `cell`.
    ///
    /// # Panics
    ///
    /// Panics when the cell is internal or already represented.
    pub fn set_rep(&mut self, cell: usize, index: usize) {
        let c = &mut self.cells[cell];
        assert!(c.children.is_none(), "cannot set rep on an internal cell");
        assert!(c.rep.is_none(), "cell already has a representative");
        c.rep = Some(index);
    }

    /// The unique leaf containing `point`, or `None` when the point lies
    /// outside the root box (or has the wrong dimension).
    pub fn leaf_of(&self, point: &[f64]) -> Option<usize> {
        if point.len() != self.dim {
            return None;
        }
        {
            let root = &self.cells[0];
            if point
                .iter()
                .zip(root.lo.iter().zip(&root.hi))
                .any(|(&v, (&l, &h))| !(v >= l && v <= h))
            {
                return None;
            }
        }
        let mut c = 0;
        while let Some((left, right)) = self.cells[c].children {
            // The split plane is the left child's upper bound on the axis
            // where the two children differ.
            let axis = (0..self.dim)
                .find(|&a| self.cells[left].hi[a] != self.cells[right].hi[a])
                .expect("children differ on the split axis");
            let mid = self.cells[left].hi[axis];
            c = if point[axis] < mid { left } else { right };
        }
        Some(c)
    }

    /// The representative candidate of cell `cell`, when it has one.
    pub fn rep(&self, cell: usize) -> Option<usize> {
        self.cells[cell].rep
    }

    /// Lower/upper bounds of cell `cell`.
    pub fn bounds(&self, cell: usize) -> (&[f64], &[f64]) {
        (&self.cells[cell].lo, &self.cells[cell].hi)
    }

    /// Euclidean diameter of cell `cell` (norm of its side lengths).
    pub fn diameter(&self, cell: usize) -> f64 {
        let c = &self.cells[cell];
        c.lo.iter()
            .zip(&c.hi)
            .map(|(&l, &h)| (h - l) * (h - l))
            .sum::<f64>()
            .sqrt()
    }

    /// Center point of cell `cell`.
    pub fn center(&self, cell: usize) -> Vec<f64> {
        let c = &self.cells[cell];
        c.lo.iter()
            .zip(&c.hi)
            .map(|(&l, &h)| 0.5 * (l + h))
            .collect()
    }

    /// Arena indices of all leaf cells, in creation order (deterministic).
    pub fn leaf_cells(&self) -> Vec<usize> {
        (0..self.cells.len())
            .filter(|&c| self.cells[c].children.is_none())
            .collect()
    }

    /// Number of leaf cells.
    pub fn leaf_count(&self) -> usize {
        self.cells.iter().filter(|c| c.children.is_none()).count()
    }

    /// Dimensionality of the box.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Effective pool size: how many cells of the *smallest* leaf's
    /// volume tile the root box. A fixed LHS pool of `N` points has
    /// effective size `N`; an adaptive tree reaches far larger effective
    /// sizes by shrinking leaves only near the front.
    pub fn effective_pool(&self) -> f64 {
        let min_vol = self
            .cells
            .iter()
            .filter(|c| c.children.is_none())
            .map(|c| {
                c.lo.iter()
                    .zip(&c.hi)
                    .map(|(&l, &h)| h - l)
                    .product::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        if min_vol > 0.0 && min_vol.is_finite() {
            self.root_volume / min_vol
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_separates_points_into_leaves() {
        let points = vec![
            vec![0.1, 0.1],
            vec![0.9, 0.9],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
        ];
        let tree = CellTree::build(&[0.0, 0.0], &[1.0, 1.0], &points).unwrap();
        let mut leaves: Vec<usize> = points
            .iter()
            .map(|p| tree.leaf_of(p).expect("in box"))
            .collect();
        leaves.sort_unstable();
        leaves.dedup();
        assert_eq!(leaves.len(), 4, "each point gets its own leaf");
        for (i, p) in points.iter().enumerate() {
            assert_eq!(tree.rep(tree.leaf_of(p).unwrap()), Some(i));
        }
    }

    #[test]
    fn coincident_points_share_a_leaf_with_lowest_rep() {
        let points = vec![vec![0.5], vec![0.5], vec![0.5]];
        let tree = CellTree::build(&[0.0], &[1.0], &points).unwrap();
        let leaf = tree.leaf_of(&[0.5]).unwrap();
        assert_eq!(tree.rep(leaf), Some(0));
    }

    #[test]
    fn split_moves_rep_and_exposes_sibling_center() {
        let points = vec![vec![0.25, 0.5]];
        let mut tree = CellTree::build(&[0.0, 0.0], &[1.0, 1.0], &points).unwrap();
        let leaf = tree.leaf_of(&points[0]).unwrap();
        let split = tree.split(leaf, &points[0]).expect("root is splittable");
        assert_eq!(tree.rep(split.kept_child), Some(0));
        assert_eq!(tree.rep(split.new_child), None);
        // Root splits on axis 0 at 0.5; the rep at x = 0.25 keeps the
        // left half, the fresh cell is centered in the right half.
        assert_eq!(split.new_center, vec![0.75, 0.5]);
        tree.set_rep(split.new_child, 1);
        assert_eq!(tree.leaf_of(&split.new_center), Some(split.new_child));
        assert_eq!(tree.leaf_count(), 2);
    }

    #[test]
    fn split_plane_prefers_longest_side_then_lowest_axis() {
        let points = vec![vec![0.1, 0.1]];
        let mut tree = CellTree::build(&[0.0, 0.0], &[1.0, 2.0], &points).unwrap();
        let leaf = tree.leaf_of(&points[0]).unwrap();
        let split = tree.split(leaf, &points[0]).unwrap();
        // Axis 1 is longer, so the split halves it: the fresh sibling
        // spans y ∈ [1, 2].
        let (lo, hi) = tree.bounds(split.new_child);
        assert_eq!((lo[1], hi[1]), (1.0, 2.0));
    }

    #[test]
    fn effective_pool_grows_with_refinement() {
        let points = vec![vec![0.25], vec![0.75]];
        let mut tree = CellTree::build(&[0.0], &[1.0], &points).unwrap();
        assert!((tree.effective_pool() - 2.0).abs() < 1e-12);
        let leaf = tree.leaf_of(&[0.25]).unwrap();
        tree.split(leaf, &[0.25]).unwrap();
        assert!((tree.effective_pool() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_points_stay_inside_the_box() {
        let points = vec![vec![0.2], vec![0.8]];
        let tree = CellTree::build(&[0.0], &[1.0], &points).unwrap();
        // The box's faces belong to exactly one leaf each.
        assert!(tree.leaf_of(&[0.0]).is_some());
        assert!(tree.leaf_of(&[1.0]).is_some());
        assert_eq!(tree.leaf_of(&[1.5]), None);
        assert_eq!(tree.leaf_of(&[0.5, 0.5]), None, "wrong dimension");
    }

    #[test]
    fn invalid_boxes_and_points_are_rejected() {
        assert!(CellTree::build(&[], &[], &[]).is_err());
        assert!(CellTree::build(&[0.0], &[0.0], &[]).is_err());
        assert!(CellTree::build(&[0.0], &[f64::INFINITY], &[]).is_err());
        assert!(CellTree::build(&[0.0], &[1.0], &[vec![2.0]]).is_err());
        assert!(CellTree::build(&[0.0], &[1.0], &[vec![0.1, 0.2]]).is_err());
    }

    #[test]
    fn deep_duplicate_insertion_respects_depth_cap() {
        // Two points closer than 2⁻⁶⁰ cannot be separated: the build
        // must terminate with both in one leaf rather than recurse
        // forever.
        let points = vec![vec![0.5], vec![0.5 + 1e-19]];
        let tree = CellTree::build(&[0.0], &[1.0], &points).unwrap();
        let leaf = tree.leaf_of(&[0.5]).unwrap();
        assert_eq!(tree.rep(leaf), Some(0));
    }
}

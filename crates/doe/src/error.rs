use std::error::Error;
use std::fmt;

/// Errors produced when building or using parameter spaces.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DoeError {
    /// A parameter definition is malformed (empty range, no choices, ...).
    InvalidParam {
        /// Parameter name.
        name: String,
        /// Description of the problem.
        reason: &'static str,
    },
    /// A space definition is malformed (duplicate names, no parameters).
    InvalidSpace {
        /// Description of the problem.
        reason: &'static str,
    },
    /// A configuration does not match the space (wrong arity or a value of
    /// the wrong kind / out of range at `index`).
    ConfigMismatch {
        /// Index of the offending parameter, or the configuration arity
        /// when the arity itself is wrong.
        index: usize,
        /// Description of the problem.
        reason: &'static str,
    },
    /// An encoded point has the wrong dimension for the space.
    DimensionMismatch {
        /// Expected dimension (the space's parameter count).
        expected: usize,
        /// Dimension of the supplied point.
        got: usize,
    },
}

impl fmt::Display for DoeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DoeError::InvalidParam { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DoeError::InvalidSpace { reason } => write!(f, "invalid parameter space: {reason}"),
            DoeError::ConfigMismatch { index, reason } => {
                write!(f, "configuration mismatch at parameter {index}: {reason}")
            }
            DoeError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "encoded point has dimension {got}, space expects {expected}"
                )
            }
        }
    }
}

impl Error for DoeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DoeError::DimensionMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("dimension 2"));
        let e = DoeError::InvalidParam {
            name: "freq".into(),
            reason: "min exceeds max",
        };
        assert!(e.to_string().contains("freq"));
    }
}

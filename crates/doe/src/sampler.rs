//! Design-of-experiments samplers over a [`ParamSpace`].

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Config, ParamSpace};

/// Latin hypercube sampler.
///
/// This is the scheme the paper uses to construct its offline benchmarks
/// (§4.1): each of the `d` axes is divided into `n` equal strata and every
/// stratum is hit exactly once, giving much better marginal coverage than
/// i.i.d. uniform sampling for the same budget.
///
/// # Example
///
/// ```
/// use doe::{ParamSpace, ParamDef, LatinHypercube};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), doe::DoeError> {
/// let space = ParamSpace::new(vec![ParamDef::float("x", 0.0, 1.0)?])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pts = LatinHypercube::new().sample(&space, 10, &mut rng);
/// assert_eq!(pts.len(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatinHypercube {
    /// When `true`, each sample sits at the center of its stratum instead
    /// of a uniformly random position inside it.
    centered: bool,
}

impl LatinHypercube {
    /// Creates a sampler with random in-stratum jitter (the usual LHS).
    pub fn new() -> Self {
        LatinHypercube { centered: false }
    }

    /// Creates a centered sampler (deterministic given the permutation):
    /// each point sits at its stratum midpoint.
    pub fn centered() -> Self {
        LatinHypercube { centered: true }
    }

    /// Draws `n` configurations from `space`.
    ///
    /// Duplicates are possible in *configuration* space when a discrete
    /// parameter has fewer than `n` levels (several strata then share a
    /// level); callers that need distinct configurations should deduplicate
    /// (see [`sample_distinct`](Self::sample_distinct)).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        space: &ParamSpace,
        n: usize,
        rng: &mut R,
    ) -> Vec<Config> {
        if n == 0 {
            return Vec::new();
        }
        let d = space.dim();
        // One independent stratum permutation per axis.
        let mut perms: Vec<Vec<usize>> = Vec::with_capacity(d);
        for _ in 0..d {
            let mut p: Vec<usize> = (0..n).collect();
            p.shuffle(rng);
            perms.push(p);
        }
        (0..n)
            .map(|i| {
                let unit: Vec<f64> = (0..d)
                    .map(|j| {
                        let stratum = perms[j][i] as f64;
                        let offset = if self.centered { 0.5 } else { rng.gen::<f64>() };
                        (stratum + offset) / n as f64
                    })
                    .collect();
                space.decode(&unit).expect("unit point has space dimension")
            })
            .collect()
    }

    /// Draws configurations until `n` *distinct* ones are collected (or the
    /// space is exhausted for fully discrete spaces). At most
    /// `max_rounds` LHS rounds are attempted.
    pub fn sample_distinct<R: Rng + ?Sized>(
        &self,
        space: &ParamSpace,
        n: usize,
        max_rounds: usize,
        rng: &mut R,
    ) -> Vec<Config> {
        let cap = space.cardinality().unwrap_or(usize::MAX).min(n);
        let mut out: Vec<Config> = Vec::with_capacity(cap);
        for _ in 0..max_rounds.max(1) {
            for c in self.sample(space, n, rng) {
                if out.len() >= cap {
                    return out;
                }
                if !out.contains(&c) {
                    out.push(c);
                }
            }
            if out.len() >= cap {
                break;
            }
        }
        out
    }
}

/// Draws `n` i.i.d. uniform configurations from `space`.
pub fn sample_random<R: Rng + ?Sized>(space: &ParamSpace, n: usize, rng: &mut R) -> Vec<Config> {
    (0..n)
        .map(|_| {
            let unit: Vec<f64> = (0..space.dim()).map(|_| rng.gen::<f64>()).collect();
            space.decode(&unit).expect("unit point has space dimension")
        })
        .collect()
}

/// Enumerates the full factorial design of a fully discrete space, using
/// `levels_per_float` equally spaced levels for any continuous parameter.
///
/// The result is capped at `max_points` configurations (the cap guards
/// against accidental combinatorial blow-ups); the enumeration is in
/// mixed-radix order, so a cap truncates rather than subsamples.
pub fn full_factorial(
    space: &ParamSpace,
    levels_per_float: usize,
    max_points: usize,
) -> Vec<Config> {
    let levels: Vec<usize> = space
        .iter()
        .map(|p| p.levels().unwrap_or(levels_per_float.max(2)))
        .collect();
    let total: usize = levels
        .iter()
        .try_fold(1usize, |acc, &l| acc.checked_mul(l))
        .unwrap_or(usize::MAX);
    let n = total.min(max_points);
    let mut out = Vec::with_capacity(n);
    let d = space.dim();
    let mut idx = vec![0usize; d];
    for _ in 0..n {
        let unit: Vec<f64> = (0..d)
            .map(|j| (idx[j] as f64 + 0.5) / levels[j] as f64)
            .collect();
        out.push(space.decode(&unit).expect("unit point has space dimension"));
        // Increment mixed-radix counter.
        for j in (0..d).rev() {
            idx[j] += 1;
            if idx[j] < levels[j] {
                break;
            }
            idx[j] = 0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParamDef, ParamValue};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn float_space(d: usize) -> ParamSpace {
        ParamSpace::new(
            (0..d)
                .map(|i| ParamDef::float(&format!("x{i}"), 0.0, 1.0).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn lhs_stratifies_each_axis() {
        let space = float_space(3);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20;
        let pts = LatinHypercube::new().sample(&space, n, &mut rng);
        assert_eq!(pts.len(), n);
        // Each axis: exactly one sample per stratum [k/n, (k+1)/n).
        for axis in 0..3 {
            let mut hits = vec![0usize; n];
            for c in &pts {
                let v = c.values()[axis].as_float().unwrap();
                let k = ((v * n as f64).floor() as usize).min(n - 1);
                hits[k] += 1;
            }
            assert!(hits.iter().all(|&h| h == 1), "axis {axis}: {hits:?}");
        }
    }

    #[test]
    fn lhs_centered_hits_midpoints() {
        let space = float_space(1);
        let mut rng = StdRng::seed_from_u64(1);
        let pts = LatinHypercube::centered().sample(&space, 4, &mut rng);
        let mut vals: Vec<f64> = pts
            .iter()
            .map(|c| c.values()[0].as_float().unwrap())
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (v, want) in vals.iter().zip([0.125, 0.375, 0.625, 0.875]) {
            assert!((v - want).abs() < 1e-12);
        }
    }

    #[test]
    fn lhs_zero_points() {
        let space = float_space(2);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(LatinHypercube::new().sample(&space, 0, &mut rng).is_empty());
    }

    #[test]
    fn lhs_is_deterministic_per_seed() {
        let space = float_space(2);
        let a = LatinHypercube::new().sample(&space, 8, &mut StdRng::seed_from_u64(9));
        let b = LatinHypercube::new().sample(&space, 8, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = LatinHypercube::new().sample(&space, 8, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn sample_distinct_respects_cardinality() {
        let space = ParamSpace::new(vec![ParamDef::boolean("a"), ParamDef::boolean("b")]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pts = LatinHypercube::new().sample_distinct(&space, 100, 20, &mut rng);
        assert_eq!(pts.len(), 4);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert_ne!(pts[i], pts[j]);
            }
        }
    }

    #[test]
    fn random_sampling_stays_in_domain() {
        let space = ParamSpace::new(vec![
            ParamDef::float("x", -5.0, 5.0).unwrap(),
            ParamDef::int("k", 2, 7).unwrap(),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for c in sample_random(&space, 50, &mut rng) {
            assert!(space.validate(&c).is_ok());
        }
    }

    #[test]
    fn full_factorial_enumerates_discrete() {
        let space = ParamSpace::new(vec![
            ParamDef::enumeration("e", &["a", "b", "c"]).unwrap(),
            ParamDef::boolean("f"),
        ])
        .unwrap();
        let pts = full_factorial(&space, 2, 1000);
        assert_eq!(pts.len(), 6);
        // First point is (Enum(0), Bool(false)) in mixed-radix order.
        assert_eq!(pts[0].values()[0], ParamValue::Enum(0));
        assert_eq!(pts[0].values()[1], ParamValue::Bool(false));
        // All distinct.
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert_ne!(pts[i], pts[j]);
            }
        }
    }

    #[test]
    fn full_factorial_caps_size() {
        let space = float_space(4);
        let pts = full_factorial(&space, 10, 100);
        assert_eq!(pts.len(), 100);
    }
}

//! Typed tool-parameter spaces and design-of-experiments sampling.
//!
//! EDA tool parameters are heterogeneous: continuous knobs
//! (`max_density ∈ [0.65, 0.90]`), integer knobs (`max_fanout ∈ [25, 50]`),
//! enumerated effort levels (`flowEffort ∈ {standard, express, extreme}`),
//! and boolean switches (`uniform_density`). This crate provides:
//!
//! - [`ParamSpace`] / [`ParamDef`] / [`ParamKind`]: a typed description of
//!   a tool's tunable-parameter space (the rows of the paper's Table 1);
//! - [`Config`]: one concrete parameter configuration, with lossless
//!   round-tripping through a unit-cube encoding ([`ParamSpace::encode`] /
//!   [`ParamSpace::decode`]) — the representation surrogate models consume;
//! - samplers: [`LatinHypercube`] (the paper's benchmark-construction
//!   scheme, §4.1), [`Halton`] (extensible low-discrepancy sequences),
//!   [`sample_random`], and [`full_factorial`].
//!
//! # Example
//!
//! ```
//! use doe::{ParamSpace, ParamDef, LatinHypercube};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), doe::DoeError> {
//! let space = ParamSpace::new(vec![
//!     ParamDef::float("max_density", 0.65, 0.90)?,
//!     ParamDef::int("max_fanout", 25, 50)?,
//!     ParamDef::enumeration("flowEffort", &["standard", "express", "extreme"])?,
//!     ParamDef::boolean("uniform_density"),
//! ])?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let configs = LatinHypercube::new().sample(&space, 100, &mut rng);
//! assert_eq!(configs.len(), 100);
//! let z = space.encode(&configs[0])?;
//! assert_eq!(z.len(), space.dim());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod config;
mod error;
mod halton;
mod sampler;
mod space;

pub use cells::{CellTree, Split};
pub use config::{Config, ParamValue};
pub use error::DoeError;
pub use halton::Halton;
pub use sampler::{full_factorial, sample_random, LatinHypercube};
pub use space::{ParamDef, ParamKind, ParamSpace};

/// Convenience alias for results returned by this crate.
pub type Result<T, E = DoeError> = std::result::Result<T, E>;

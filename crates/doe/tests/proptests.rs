//! Property-based tests of parameter spaces, samplers, and the
//! bisection cell tree behind the adaptive candidate pool.

use doe::{full_factorial, sample_random, CellTree, LatinHypercube, ParamDef, ParamSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_space() -> impl Strategy<Value = ParamSpace> {
    // 1-4 parameters with assorted kinds.
    prop::collection::vec(0u8..4, 1..5).prop_map(|kinds| {
        let defs = kinds
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let name = format!("p{i}");
                match k % 4 {
                    0 => ParamDef::float(&name, -1.0, 3.0).unwrap(),
                    1 => ParamDef::int(&name, 2, 9).unwrap(),
                    2 => ParamDef::enumeration(&name, &["a", "b", "c"]).unwrap(),
                    _ => ParamDef::boolean(&name),
                }
            })
            .collect();
        ParamSpace::new(defs).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn encode_decode_roundtrip_is_stable(space in arb_space(), seed in 0u64..1000) {
        // decode(encode(c)) == c for sampled configurations.
        let mut rng = StdRng::seed_from_u64(seed);
        for c in sample_random(&space, 10, &mut rng) {
            let z = space.encode(&c).unwrap();
            prop_assert!(z.iter().all(|&u| (0.0..=1.0).contains(&u)));
            let back = space.decode(&z).unwrap();
            // Floats may round; re-encoding must agree.
            let z2 = space.encode(&back).unwrap();
            for (a, b) in z.iter().zip(&z2) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn lhs_samples_are_valid_and_stratified(space in arb_space(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 12;
        let samples = LatinHypercube::new().sample(&space, n, &mut rng);
        prop_assert_eq!(samples.len(), n);
        for c in &samples {
            prop_assert!(space.validate(c).is_ok());
        }
        // Continuous axes are perfectly stratified.
        for (axis, def) in space.iter().enumerate() {
            if def.levels().is_none() {
                let mut hits = vec![0usize; n];
                for c in &samples {
                    let u = space.encode(c).unwrap()[axis];
                    hits[((u * n as f64) as usize).min(n - 1)] += 1;
                }
                prop_assert!(hits.iter().all(|&h| h == 1), "axis {axis}: {hits:?}");
            }
        }
    }

    #[test]
    fn cell_tree_is_an_exact_partition(
        coords in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 2..=2), 1..10),
        split_picks in prop::collection::vec(0usize..1024, 0..8),
        queries in prop::collection::vec(
            prop::collection::vec(0.0f64..=1.0, 2..=2), 1..8),
    ) {
        let mut points = coords;
        let mut tree = CellTree::build(&[0.0, 0.0], &[1.0, 1.0], &points).unwrap();

        // Refine at arbitrary represented leaves.
        for pick in &split_picks {
            let leaves: Vec<usize> = tree
                .leaf_cells()
                .into_iter()
                .filter(|&c| tree.rep(c).is_some())
                .collect();
            let leaf = leaves[pick % leaves.len()];
            let rep = tree.rep(leaf).unwrap();
            if let Some(split) = tree.split(leaf, &points[rep].clone()) {
                let idx = points.len();
                points.push(split.new_center);
                tree.set_rep(split.new_child, idx);
            }
        }

        // Law 1: leaf volumes tile the root box exactly.
        let total: f64 = tree
            .leaf_cells()
            .iter()
            .map(|&c| {
                let (lo, hi) = tree.bounds(c);
                lo.iter().zip(hi).map(|(&l, &h)| h - l).product::<f64>()
            })
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "leaf volumes sum to {total}");

        // Law 2: every in-box point belongs to exactly one leaf under the
        // half-open containment rule (upper faces closed only at the
        // root boundary), and leaf_of agrees with it.
        for q in &queries {
            let claimed = tree.leaf_of(q);
            prop_assert!(claimed.is_some(), "in-box point must land in a leaf");
            let holders: Vec<usize> = tree
                .leaf_cells()
                .into_iter()
                .filter(|&c| {
                    let (lo, hi) = tree.bounds(c);
                    q.iter().enumerate().all(|(d, &v)| {
                        v >= lo[d] && (v < hi[d] || (hi[d] == 1.0 && v <= 1.0))
                    })
                })
                .collect();
            prop_assert_eq!(holders.len(), 1, "point {:?} held by {:?}", q, holders);
            prop_assert_eq!(claimed, Some(holders[0]));
        }

        // Law 3: every representative lies inside its own cell.
        for c in tree.leaf_cells() {
            if let Some(rep) = tree.rep(c) {
                prop_assert_eq!(
                    tree.leaf_of(&points[rep]),
                    Some(c),
                    "rep {} strayed from its leaf", rep
                );
            }
        }
    }

    #[test]
    fn full_factorial_is_distinct_and_valid(space in arb_space()) {
        let pts = full_factorial(&space, 3, 400);
        for c in &pts {
            prop_assert!(space.validate(c).is_ok());
        }
        if let Some(card) = space.cardinality() {
            prop_assert_eq!(pts.len(), card.min(400));
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    prop_assert_ne!(&pts[i], &pts[j]);
                }
            }
        }
    }
}

//! Property-based tests for the dense linear-algebra substrate.

use linalg::{vecops, Cholesky, Lu, Matrix};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in [-10, 10].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("len matches"))
}

/// Strategy: a random SPD matrix built as `B·Bᵀ + n·I`.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n, n).prop_map(move |b| {
        let mut a = b.matmul(&b.transpose()).expect("square product");
        a.add_diag(n as f64 + 1.0);
        a
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in matrix_strategy(4, 3)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_identity(m in matrix_strategy(3, 5)) {
        let left = Matrix::identity(3).matmul(&m).unwrap();
        let right = m.matmul(&Matrix::identity(5)).unwrap();
        prop_assert!(left.sub(&m).unwrap().max_abs() < 1e-12);
        prop_assert!(right.sub(&m).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn matmul_transpose_identity(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.sub(&rhs).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn cholesky_reconstructs(a in spd_strategy(5)) {
        let c = Cholesky::new(&a).unwrap();
        let l = c.factor();
        let rebuilt = l.matmul(&l.transpose()).unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(rebuilt.sub(&a).unwrap().max_abs() / scale < 1e-10);
    }

    #[test]
    fn cholesky_solve_is_inverse_application(a in spd_strategy(4), x in prop::collection::vec(-5.0f64..5.0, 4)) {
        let c = Cholesky::new(&a).unwrap();
        let b = a.matvec(&x).unwrap();
        let got = c.solve_vec(&b).unwrap();
        for (g, t) in got.iter().zip(&x) {
            prop_assert!((g - t).abs() < 1e-7, "got {g}, want {t}");
        }
    }

    #[test]
    fn cholesky_logdet_matches_lu_det(a in spd_strategy(4)) {
        let c = Cholesky::new(&a).unwrap();
        let lu = Lu::new(&a).unwrap();
        let det = lu.det();
        prop_assert!(det > 0.0);
        prop_assert!((c.log_det() - det.ln()).abs() < 1e-6);
    }

    #[test]
    fn lu_solve_roundtrip(a in spd_strategy(4), x in prop::collection::vec(-5.0f64..5.0, 4)) {
        let lu = Lu::new(&a).unwrap();
        let b = a.matvec(&x).unwrap();
        let got = lu.solve_vec(&b).unwrap();
        for (g, t) in got.iter().zip(&x) {
            prop_assert!((g - t).abs() < 1e-7);
        }
    }

    #[test]
    fn dot_is_symmetric(v in prop::collection::vec(-10.0f64..10.0, 6),
                        w in prop::collection::vec(-10.0f64..10.0, 6)) {
        prop_assert!((vecops::dot(&v, &w) - vecops::dot(&w, &v)).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality(v in prop::collection::vec(-10.0f64..10.0, 6),
                           w in prop::collection::vec(-10.0f64..10.0, 6)) {
        let zero = vec![0.0; 6];
        let d_vw = vecops::dist(&v, &w);
        let d_v = vecops::dist(&v, &zero);
        let d_w = vecops::dist(&w, &zero);
        prop_assert!(d_vw <= d_v + d_w + 1e-12);
    }

    #[test]
    fn symmetrize_makes_symmetric(m in matrix_strategy(5, 5)) {
        let mut s = m;
        s.symmetrize();
        for i in 0..5 {
            for j in 0..5 {
                prop_assert_eq!(s[(i, j)], s[(j, i)]);
            }
        }
    }
}

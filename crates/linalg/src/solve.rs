//! Triangular substitution solvers.
//!
//! These operate on full (square) [`Matrix`] storage but only read the
//! relevant triangle, which is how the Cholesky and LU factors store their
//! results.

use crate::counters;
use crate::{LinalgError, Matrix, Result};

/// Solves `L x = b` by forward substitution, reading only the lower
/// triangle (including the diagonal) of `l`.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] if `l` is not square.
/// - [`LinalgError::ShapeMismatch`] if `b.len() != l.rows()`.
/// - [`LinalgError::Singular`] if a diagonal entry vanishes.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    check_triangular_args(l, b, "solve_lower")?;
    counters::add_tri_solve_rhs(1);
    let n = l.rows();
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        let row = l.row(i);
        for (j, xj) in x.iter().enumerate().take(i) {
            s -= row[j] * xj;
        }
        let d = row[i];
        if d.abs() < f64::MIN_POSITIVE {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `U x = b` by backward substitution, reading only the upper
/// triangle (including the diagonal) of `u`.
///
/// # Errors
///
/// Same conditions as [`solve_lower`].
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    check_triangular_args(u, b, "solve_upper")?;
    counters::add_tri_solve_rhs(1);
    let n = u.rows();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        let row = u.row(i);
        for (j, xj) in x.iter().enumerate().skip(i + 1) {
            s -= row[j] * xj;
        }
        let d = row[i];
        if d.abs() < f64::MIN_POSITIVE {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `Lᵀ x = b` by backward substitution, reading only the lower
/// triangle of `l` (useful after a Cholesky factorization, avoiding an
/// explicit transpose).
///
/// # Errors
///
/// Same conditions as [`solve_lower`].
pub fn solve_lower_transposed(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    check_triangular_args(l, b, "solve_lower_transposed")?;
    counters::add_tri_solve_rhs(1);
    let n = l.rows();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        // (Lᵀ)[i][j] = L[j][i] for j > i.
        for (j, xj) in x.iter().enumerate().skip(i + 1) {
            s -= l[(j, i)] * xj;
        }
        let d = l[(i, i)];
        if d.abs() < f64::MIN_POSITIVE {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves `L X = B` for all columns of `B` at once by forward
/// substitution, reading only the lower triangle of `l`.
///
/// The per-column arithmetic (order of subtractions and the final
/// division) is exactly that of [`solve_lower`], and columns never mix,
/// so `solve_lower_multi(l, B)` reproduces `solve_lower(l, B[:, c])`
/// bit-for-bit in every column — batching (and any chunking of the
/// columns across threads) cannot change results. The row-major sweep
/// touches each `L` row once per right-hand side block instead of once
/// per right-hand side, which is what makes batched GP prediction fast.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] if `l` is not square.
/// - [`LinalgError::ShapeMismatch`] if `b.rows() != l.rows()`.
/// - [`LinalgError::Singular`] if a diagonal entry vanishes.
pub fn solve_lower_multi(l: &Matrix, b: &Matrix) -> Result<Matrix> {
    if !l.is_square() {
        return Err(LinalgError::NotSquare { shape: l.shape() });
    }
    if b.rows() != l.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_lower_multi",
            lhs: l.shape(),
            rhs: b.shape(),
        });
    }
    let n = l.rows();
    let k = b.cols();
    counters::add_tri_solve_rhs(k as u64);
    let mut x = b.clone();
    let data = x.as_mut_slice();
    for i in 0..n {
        let row = l.row(i);
        let (solved, rest) = data.split_at_mut(i * k);
        let xi = &mut rest[..k];
        for (j, xj) in solved.chunks_exact(k).enumerate() {
            let lij = row[j];
            for (out, &v) in xi.iter_mut().zip(xj) {
                *out -= lij * v;
            }
        }
        let d = row[i];
        if d.abs() < f64::MIN_POSITIVE {
            return Err(LinalgError::Singular { pivot: i });
        }
        for out in xi.iter_mut() {
            *out /= d;
        }
    }
    Ok(x)
}

/// Extends a partially solved forward substitution `L x = b` by its last
/// rows: `x` holds the already-solved prefix (`x.len()` rows) and
/// `b_tail` the right-hand side for the remaining `l.rows() - x.len()`
/// rows; on success `x` has grown to the full solution.
///
/// Row `i` of [`solve_lower`] reads only `x[0..i]` and row `i` of the
/// lower triangle, with a fixed left-to-right accumulation order. This
/// function replays that exact recurrence for the tail rows, so after a
/// [`crate::Cholesky::extend`] (which copies the old factor rows
/// unchanged) the combined prefix + tail is bit-for-bit identical to a
/// from-scratch `solve_lower` on the extended system. That identity is
/// what lets a predict cache reuse `L⁻¹ k(X, x*)` across conditioning
/// steps and only pay for the appended rows: O(n·q) per cached vector
/// instead of O(n²).
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] if `l` is not square.
/// - [`LinalgError::ShapeMismatch`] if `x.len() + b_tail.len() != l.rows()`.
/// - [`LinalgError::Singular`] if a tail diagonal entry vanishes (`x` is
///   left partially extended in that case and should be discarded).
pub fn solve_lower_tail(l: &Matrix, b_tail: &[f64], x: &mut Vec<f64>) -> Result<()> {
    if !l.is_square() {
        return Err(LinalgError::NotSquare { shape: l.shape() });
    }
    let n = l.rows();
    let start = x.len();
    if start + b_tail.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_lower_tail",
            lhs: l.shape(),
            rhs: (start + b_tail.len(), 1),
        });
    }
    counters::add_tri_solve_tail_rows(b_tail.len() as u64);
    for (i, &bi) in (start..n).zip(b_tail) {
        let mut s = bi;
        let row = l.row(i);
        for (j, xj) in x.iter().enumerate().take(i) {
            s -= row[j] * xj;
        }
        let d = row[i];
        if d.abs() < f64::MIN_POSITIVE {
            return Err(LinalgError::Singular { pivot: i });
        }
        x.push(s / d);
    }
    Ok(())
}

fn check_triangular_args(m: &Matrix, b: &[f64], op: &'static str) -> Result<()> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare { shape: m.shape() });
    }
    if b.len() != m.rows() {
        return Err(LinalgError::ShapeMismatch {
            op,
            lhs: m.shape(),
            rhs: (b.len(), 1),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_solve_matches_hand_computation() {
        // L = [[2,0],[1,3]], b = [4, 7] → x = [2, 5/3]
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]).unwrap();
        let x = solve_lower(&l, &[4.0, 7.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-15);
        assert!((x[1] - 5.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn upper_solve_matches_hand_computation() {
        // U = [[2,1],[0,3]], b = [5, 6] → x = [1.5, 2]
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        let x = solve_upper(&u, &[5.0, 6.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn lower_transposed_equals_explicit_transpose() {
        let l =
            Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[0.5, -1.0, 4.0]]).unwrap();
        let b = [1.0, -2.0, 3.0];
        let via_t = solve_upper(&l.transpose(), &b).unwrap();
        let direct = solve_lower_transposed(&l, &b).unwrap();
        for (a, c) in via_t.iter().zip(&direct) {
            assert!((a - c).abs() < 1e-14);
        }
    }

    #[test]
    fn ignores_other_triangle() {
        // Garbage above the diagonal must not affect solve_lower.
        let l = Matrix::from_rows(&[&[2.0, 99.0], &[1.0, 3.0]]).unwrap();
        let x = solve_lower(&l, &[4.0, 7.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn rejects_bad_shapes() {
        let m = Matrix::zeros(2, 3);
        assert!(matches!(
            solve_lower(&m, &[1.0, 2.0]).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
        let sq = Matrix::identity(2);
        assert!(matches!(
            solve_upper(&sq, &[1.0]).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn multi_rhs_matches_per_vector_solve_bitwise() {
        let l =
            Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.3, 3.0, 0.0], &[0.5, -1.1, 4.0]]).unwrap();
        let b =
            Matrix::from_rows(&[&[1.0, -2.0, 0.25], &[4.0, 0.5, -1.0], &[-3.0, 2.5, 8.0]]).unwrap();
        let x = solve_lower_multi(&l, &b).unwrap();
        for c in 0..3 {
            let xc = solve_lower(&l, &b.col(c)).unwrap();
            for i in 0..3 {
                assert_eq!(x[(i, c)], xc[i], "column {c} row {i} must match bitwise");
            }
        }
    }

    #[test]
    fn multi_rhs_rejects_bad_shapes_and_singular() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]).unwrap();
        assert!(matches!(
            solve_lower_multi(&Matrix::zeros(2, 3), &Matrix::zeros(2, 1)).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
        assert!(matches!(
            solve_lower_multi(&l, &Matrix::zeros(3, 1)).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
        let sing = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]).unwrap();
        assert!(matches!(
            solve_lower_multi(&sing, &Matrix::zeros(2, 2)).unwrap_err(),
            LinalgError::Singular { pivot: 0 }
        ));
    }

    #[test]
    fn tail_solve_matches_full_solve_bitwise() {
        let l = Matrix::from_rows(&[
            &[2.0, 0.0, 0.0, 0.0],
            &[1.3, 3.0, 0.0, 0.0],
            &[0.5, -1.1, 4.0, 0.0],
            &[-0.7, 0.9, 1.7, 2.5],
        ])
        .unwrap();
        let b = [1.0, 4.0, -3.0, 0.75];
        let full = solve_lower(&l, &b).unwrap();
        for split in 0..=b.len() {
            let mut x = full[..split].to_vec();
            solve_lower_tail(&l, &b[split..], &mut x).unwrap();
            assert_eq!(x, full, "split at {split} must reproduce the full solve");
        }
    }

    #[test]
    fn tail_solve_rejects_bad_shapes_and_singular() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]).unwrap();
        let mut x = vec![0.5];
        assert!(matches!(
            solve_lower_tail(&Matrix::zeros(2, 3), &[1.0], &mut x).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
        assert!(matches!(
            solve_lower_tail(&l, &[1.0, 2.0], &mut x).unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
        let sing = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]).unwrap();
        let mut x = vec![1.0];
        assert!(matches!(
            solve_lower_tail(&sing, &[1.0], &mut x).unwrap_err(),
            LinalgError::Singular { pivot: 1 }
        ));
    }

    #[test]
    fn detects_singular_pivot() {
        let l = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]).unwrap();
        assert!(matches!(
            solve_lower(&l, &[1.0, 1.0]).unwrap_err(),
            LinalgError::Singular { pivot: 0 }
        ));
    }
}

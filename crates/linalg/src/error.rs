use std::error::Error;
use std::fmt;

/// Errors produced by the dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The matrix is not square but the operation requires a square matrix.
    NotSquare {
        /// Observed shape `(rows, cols)`.
        shape: (usize, usize),
    },
    /// Cholesky factorization failed: the matrix is not (numerically)
    /// positive definite. Carries the index of the failing pivot and its
    /// value.
    NotPositiveDefinite {
        /// Row/column index of the non-positive pivot.
        pivot: usize,
        /// Value encountered at the pivot (≤ 0 or non-finite).
        value: f64,
    },
    /// LU factorization hit a (numerically) singular pivot.
    Singular {
        /// Row/column index of the vanishing pivot.
        pivot: usize,
    },
    /// An input had an invalid dimension (e.g. an empty matrix where a
    /// non-empty one is required).
    InvalidDimension {
        /// Description of the offending argument.
        what: &'static str,
    },
    /// A non-finite value (NaN or ±inf) was encountered in an input.
    NonFinite {
        /// Description of where the value was found.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix is {}x{}, expected square", shape.0, shape.1)
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite (pivot {pivot} has value {value:e})"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (pivot {pivot} vanishes)")
            }
            LinalgError::InvalidDimension { what } => {
                write!(f, "invalid dimension: {what}")
            }
            LinalgError::NonFinite { what } => {
                write!(f, "non-finite value encountered in {what}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: (2, 3),
                rhs: (4, 5),
            },
            LinalgError::NotSquare { shape: (2, 3) },
            LinalgError::NotPositiveDefinite {
                pivot: 1,
                value: -0.5,
            },
            LinalgError::Singular { pivot: 0 },
            LinalgError::InvalidDimension { what: "empty" },
            LinalgError::NonFinite { what: "rhs" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}

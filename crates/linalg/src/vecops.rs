//! Free functions on `&[f64]` slices.
//!
//! These helpers keep the hot inner loops of the GP and tuner crates free of
//! ad-hoc iterator chains, and centralize the shape `assert!`s.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// In-place `y ← y + alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x ← alpha * x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Elementwise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Elementwise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Arithmetic mean (`0.0` for an empty slice).
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population standard deviation (`0.0` for slices with < 2 elements).
pub fn std_dev(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    (a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64).sqrt()
}

/// Minimum value (`f64::INFINITY` for an empty slice). NaN entries are
/// ignored.
pub fn min(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value (`f64::NEG_INFINITY` for an empty slice). NaN entries are
/// ignored.
pub fn max(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Index of the largest element, or `None` for an empty slice. NaN entries
/// never win.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the smallest element, or `None` for an empty slice. NaN entries
/// never win.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v >= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn add_sub_elementwise() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn min_max() {
        assert_eq!(min(&[2.0, -1.0, 3.0]), -1.0);
        assert_eq!(max(&[2.0, -1.0, 3.0]), 3.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn argext() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmin(&[1.0, 5.0, 3.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
        assert_eq!(argmin(&[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn argext_ties_take_first() {
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
        assert_eq!(argmin(&[2.0, 2.0]), Some(0));
    }
}

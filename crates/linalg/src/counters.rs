//! Process-global resource counters for the linear-algebra hot paths.
//!
//! The counters are deliberately coarse: each routine adds one aggregate
//! increment per *call* (never per inner-loop iteration), so the cost is
//! a handful of relaxed atomic adds per factorization or solve —
//! unmeasurable next to the O(n³) work being counted. Consumers snapshot
//! the counters around a region of interest and report the delta (see
//! `obs::Event::ResourceSample`).
//!
//! Being process-global, the counters mix contributions when several
//! runs share a process (e.g. parallel tests); deltas are exact only for
//! a single-run process.

use std::sync::atomic::{AtomicU64, Ordering};

/// Floating-point operations spent in Cholesky factorizations
/// (≈ n³/3 per full factorization, ≈ n²k + nk² + k³/3 per extension).
pub static CHOL_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Panel factorizations performed by the blocked Cholesky
/// (⌈n / block⌉ per factorization).
pub static CHOL_PANELS: AtomicU64 = AtomicU64::new(0);

/// Right-hand sides pushed through triangular substitutions (a multi-RHS
/// solve counts once per column).
pub static TRI_SOLVE_RHS: AtomicU64 = AtomicU64::new(0);

/// Rows appended by partial-tail forward substitutions
/// (`solve_lower_tail`), i.e. the incremental work the predict cache pays
/// instead of a full O(n²) re-solve.
pub static TRI_SOLVE_TAIL_ROWS: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn add_chol_flops(n: u64) {
    CHOL_FLOPS.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn add_chol_panels(n: u64) {
    CHOL_PANELS.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn add_tri_solve_rhs(n: u64) {
    TRI_SOLVE_RHS.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn add_tri_solve_tail_rows(n: u64) {
    TRI_SOLVE_TAIL_ROWS.fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time reading of every linalg counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinalgCounters {
    /// Cholesky floating-point operations.
    pub chol_flops: u64,
    /// Blocked-Cholesky panel factorizations.
    pub chol_panels: u64,
    /// Triangular-solve right-hand sides.
    pub tri_solve_rhs: u64,
    /// Partial-tail forward-substitution rows.
    pub tri_solve_tail_rows: u64,
}

impl LinalgCounters {
    /// Reads the current counter values.
    pub fn snapshot() -> Self {
        LinalgCounters {
            chol_flops: CHOL_FLOPS.load(Ordering::Relaxed),
            chol_panels: CHOL_PANELS.load(Ordering::Relaxed),
            tri_solve_rhs: TRI_SOLVE_RHS.load(Ordering::Relaxed),
            tri_solve_tail_rows: TRI_SOLVE_TAIL_ROWS.load(Ordering::Relaxed),
        }
    }

    /// Counter increments since `earlier` (saturating, in case another
    /// thread interleaved).
    pub fn since(&self, earlier: &LinalgCounters) -> LinalgCounters {
        LinalgCounters {
            chol_flops: self.chol_flops.saturating_sub(earlier.chol_flops),
            chol_panels: self.chol_panels.saturating_sub(earlier.chol_panels),
            tri_solve_rhs: self.tri_solve_rhs.saturating_sub(earlier.tri_solve_rhs),
            tri_solve_tail_rows: self
                .tri_solve_tail_rows
                .saturating_sub(earlier.tri_solve_tail_rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cholesky, Matrix};

    #[test]
    fn factorization_and_solves_advance_counters() {
        // Deltas are lower-bounded, not exact: other tests in this binary
        // run concurrently and advance the same globals.
        let before = LinalgCounters::snapshot();
        let n = 24;
        let mut a = Matrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        a.add_diag(n as f64);
        let chol = Cholesky::new(&a).unwrap();
        chol.solve_vec(&vec![1.0; n]).unwrap();
        chol.solve_lower_only_multi(&Matrix::zeros(n, 3)).unwrap();
        let delta = LinalgCounters::snapshot().since(&before);
        let n3 = (n * n * n) as u64;
        assert!(delta.chol_flops >= n3 / 3, "flops {delta:?}");
        assert!(delta.chol_panels >= 1, "panels {delta:?}");
        // solve_vec = 2 RHS (forward + transposed), multi = 3 columns.
        assert!(delta.tri_solve_rhs >= 5, "rhs {delta:?}");
    }

    #[test]
    fn since_saturates() {
        let a = LinalgCounters {
            chol_flops: 1,
            chol_panels: 0,
            tri_solve_rhs: 0,
            tri_solve_tail_rows: 0,
        };
        let b = LinalgCounters {
            chol_flops: 5,
            chol_panels: 2,
            tri_solve_rhs: 3,
            tri_solve_tail_rows: 4,
        };
        assert_eq!(a.since(&b), LinalgCounters::default());
    }
}

use crate::{LinalgError, Matrix, Result};

/// LU factorization with partial pivoting: `P·A = L·U`.
///
/// Used for general (not necessarily symmetric) square systems, e.g. the
/// normal-equation blocks of the recommender baseline.
///
/// # Example
///
/// ```
/// use linalg::{Matrix, Lu};
///
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]])?; // needs pivoting
/// let lu = Lu::new(&a)?;
/// let x = lu.solve_vec(&[4.0, 5.0])?;
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined factors: strictly-lower part holds L (unit diagonal
    /// implied), upper part holds U.
    lu: Matrix,
    /// Row permutation: solution row `i` reads right-hand-side row `perm[i]`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

impl Lu {
    /// Factors a square matrix with partial pivoting.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if `a` is not square.
    /// - [`LinalgError::InvalidDimension`] if `a` is empty.
    /// - [`LinalgError::Singular`] if the matrix is numerically singular.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidDimension {
                what: "lu of an empty matrix",
            });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot: largest |entry| in column k at/below the diagonal.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < 1e-300 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let upd = m * lu[(k, j)];
                    lu[(i, j)] -= upd;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension `n` of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve_vec",
                lhs: self.lu.shape(),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation, then L (unit-diagonal forward) then U (backward).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of `A`.
    pub fn det(&self) -> f64 {
        self.sign * (0..self.dim()).map(|i| self.lu[(i, i)]).product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_with_pivoting() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.0, 3.0], &[2.0, 1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        let x_true = [1.0, 2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = lu.solve_vec(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn det_matches_known_value() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn det_sign_tracks_permutation() {
        // Swapping rows of the identity gives det = -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            Lu::new(&a).unwrap_err(),
            LinalgError::Singular { .. }
        ));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Lu::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Lu::new(&Matrix::zeros(0, 0)).is_err());
        let lu = Lu::new(&Matrix::identity(2)).unwrap();
        assert!(lu.solve_vec(&[1.0]).is_err());
    }

    #[test]
    fn identity_solves_trivially() {
        let lu = Lu::new(&Matrix::identity(3)).unwrap();
        let x = lu.solve_vec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        assert!((lu.det() - 1.0).abs() < 1e-15);
    }
}

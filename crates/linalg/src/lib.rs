//! Small dense linear-algebra substrate for the PPATuner reproduction.
//!
//! The Gaussian-process crate (`gp`) needs exact dense linear algebra —
//! Cholesky factorization of kernel matrices, triangular solves, and the
//! associated vector/matrix arithmetic — and the recommender baseline needs
//! basic matrix factorization primitives. Rather than pull in a large
//! external dependency, this crate implements the handful of routines the
//! workspace needs, in a form tuned for the sizes that actually occur
//! (kernel matrices of a few hundred rows).
//!
//! # Contents
//!
//! - [`Matrix`]: a row-major dense matrix of `f64`.
//! - [`Cholesky`]: `A = L·Lᵀ` factorization with solves, inverse, and
//!   log-determinant (the workhorse of GP training and inference).
//! - [`Lu`]: partial-pivoting LU for general square systems.
//! - [`solve`]: forward/backward triangular substitution helpers.
//! - [`vecops`]: free functions on `&[f64]` (dot, norms, axpy, ...).
//!
//! # Example
//!
//! ```
//! use linalg::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), linalg::LinalgError> {
//! // Solve the SPD system A x = b.
//! let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
//! let chol = Cholesky::new(&a)?;
//! let x = chol.solve_vec(&[2.0, 1.0])?;
//! assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
pub mod counters;
mod error;
mod lu;
mod matrix;
pub mod solve;
pub mod vecops;

pub use cholesky::Cholesky;
pub use counters::LinalgCounters;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;

/// Convenience alias for results returned by this crate.
pub type Result<T, E = LinalgError> = std::result::Result<T, E>;

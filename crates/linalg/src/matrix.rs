use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the shared currency of the workspace's numerical code: kernel
/// matrices in the GP crate, latent-factor blocks in the recommender
/// baseline, and intermediate products everywhere else. It deliberately
/// exposes a small, predictable API instead of operator overloading for
/// every combination of references.
///
/// # Example
///
/// ```
/// use linalg::Matrix;
///
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c[(1, 0)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimension`] if `rows` is empty or the
    /// rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::InvalidDimension {
                what: "from_rows requires at least one non-empty row",
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::InvalidDimension {
                    what: "from_rows requires rows of equal length",
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimension`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidDimension {
                what: "from_vec length must equal rows * cols",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Copies the main diagonal into a new vector.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// Uses a cache-friendly `ikj` loop order; adequate for the few-hundred
    /// row kernel matrices this workspace manipulates.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions
    /// differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a_ik = self[(i, k)];
                if a_ik == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a_ik * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vecops::dot(self.row(i), v))
            .collect())
    }

    /// Transposed matrix–vector product `selfᵀ · v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != self.rows()`.
    pub fn matvec_t(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_t",
                lhs: (self.cols, self.rows),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += vi * a;
            }
        }
        Ok(out)
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Adds `value` to every diagonal entry in place (jitter/regularizer).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diag(&mut self, value: f64) {
        assert!(self.is_square(), "add_diag requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += value;
        }
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Extracts the contiguous sub-matrix with rows `r0..r1` and columns
    /// `c0..c1` (half-open ranges).
    ///
    /// # Panics
    ///
    /// Panics if the ranges are out of bounds or reversed.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "col range out of bounds");
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for j in 0..cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4e}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidDimension { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        let empty: &[f64] = &[];
        assert!(Matrix::from_rows(&[empty]).is_err());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn row_col_diag_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
        assert_eq!(m.diag(), vec![1.0, 5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = sample(); // 2x3
        let b = a.transpose(); // 3x2
        let c = a.matmul(&b).unwrap(); // 2x2
        assert_eq!(c[(0, 0)], 14.0);
        assert_eq!(c[(0, 1)], 32.0);
        assert_eq!(c[(1, 0)], 32.0);
        assert_eq!(c[(1, 1)], 77.0);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = sample();
        let err = a.matmul(&sample()).unwrap_err();
        assert!(matches!(
            err,
            LinalgError::ShapeMismatch { op: "matmul", .. }
        ));
    }

    #[test]
    fn matvec_and_transposed() {
        let a = sample();
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.matvec_t(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = sample();
        let s = a.add(&a).unwrap();
        assert_eq!(s[(1, 2)], 12.0);
        let d = s.sub(&a).unwrap();
        assert_eq!(d, a);
        assert_eq!(a.scale(2.0), s);
        assert!(a.add(&a.transpose()).is_err());
    }

    #[test]
    fn add_diag_and_symmetrize() {
        let mut m = Matrix::from_rows(&[&[1.0, 4.0], &[0.0, 1.0]]).unwrap();
        m.add_diag(1.0);
        assert_eq!(m.diag(), vec![2.0, 2.0]);
        m.symmetrize();
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 2.0);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], 6.0);
        assert_eq!(s[(1, 1)], 11.0);
    }

    #[test]
    fn norms_and_finiteness() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.is_finite());
        let mut bad = m.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(!bad.is_finite());
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let m = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m[(1, 1)], 2.0);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn debug_output_nonempty() {
        let m = sample();
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 2x3"));
    }
}

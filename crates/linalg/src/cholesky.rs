use crate::solve::{solve_lower, solve_lower_transposed};
use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// This is the workhorse of the Gaussian-process crate: kernel matrices are
/// factored once per fit and then reused for solves, log-determinants, and
/// predictive variances.
///
/// # Example
///
/// ```
/// use linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0,  0.0],
///                             &[-5.0,  0.0, 11.0]])?;
/// let chol = Cholesky::new(&a)?;
/// // Reconstruction: L Lᵀ = A.
/// let l = chol.factor();
/// let rebuilt = l.matmul(&l.transpose())?;
/// assert!((rebuilt.sub(&a)?.max_abs()) < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor; entries above the diagonal are zero.
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the caller is responsible for
    /// `a` being (numerically) symmetric.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if `a` is not square.
    /// - [`LinalgError::InvalidDimension`] if `a` is empty.
    /// - [`LinalgError::NotPositiveDefinite`] if a pivot is ≤ 0 or
    ///   non-finite; the error reports the failing pivot index and value.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidDimension {
                what: "cholesky of an empty matrix",
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if !(s.is_finite() && s > 0.0) {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i, value: s });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factors `a + jitter·I`, retrying with jitter escalated by ×10 up to
    /// `max_tries` times when the factorization fails.
    ///
    /// Kernel matrices are often positive definite only up to rounding; this
    /// is the standard remedy. Returns the factorization together with the
    /// jitter that finally succeeded (`0.0` when none was needed and
    /// `jitter0 <= 0`).
    ///
    /// # Errors
    ///
    /// Propagates the last [`LinalgError::NotPositiveDefinite`] when all
    /// attempts fail, or shape errors immediately.
    pub fn new_with_jitter(a: &Matrix, jitter0: f64, max_tries: usize) -> Result<(Self, f64)> {
        match Cholesky::new(a) {
            Ok(c) => return Ok((c, 0.0)),
            Err(e @ (LinalgError::NotSquare { .. } | LinalgError::InvalidDimension { .. })) => {
                return Err(e)
            }
            Err(_) => {}
        }
        let mut jitter = if jitter0 > 0.0 { jitter0 } else { 1e-10 };
        let mut last_err = LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: f64::NAN,
        };
        for _ in 0..max_tries.max(1) {
            let mut aj = a.clone();
            aj.add_diag(jitter);
            match Cholesky::new(&aj) {
                Ok(c) => return Ok((c, jitter)),
                Err(e) => last_err = e,
            }
            jitter *= 10.0;
        }
        Err(last_err)
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension `n` of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via the two triangular solves
    /// `L z = b`, `Lᵀ x = z`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let z = solve_lower(&self.l, b)?;
        solve_lower_transposed(&self.l, &z)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_mat",
                lhs: self.l.shape(),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// Solves the single triangular system `L z = b` (useful for computing
    /// predictive variances as `‖z‖²` without the second substitution).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_lower_only(&self, b: &[f64]) -> Result<Vec<f64>> {
        solve_lower(&self.l, b)
    }

    /// Log-determinant of `A`: `2 Σ log L[i][i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Explicit inverse `A⁻¹` (avoid when a solve suffices).
    ///
    /// # Errors
    ///
    /// Propagates triangular-solve failures (which cannot occur for a factor
    /// produced by [`Cholesky::new`], whose diagonal is strictly positive).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_mat(&Matrix::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]).unwrap()
    }

    #[test]
    fn factor_matches_known_result() {
        // Classic example: L = [[5,0,0],[3,3,0],[-1,1,3]].
        let c = Cholesky::new(&spd3()).unwrap();
        let l = c.factor();
        let expect = [[5.0, 0.0, 0.0], [3.0, 3.0, 0.0], [-1.0, 1.0, 3.0]];
        for i in 0..3 {
            for j in 0..3 {
                assert!((l[(i, j)] - expect[i][j]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = c.solve_vec(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_mat_inverts() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let inv = c.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let id = Matrix::identity(3);
        assert!(prod.sub(&id).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn log_det_matches_known_value() {
        // det(A) = (5*3*3)^2 = 2025.
        let c = Cholesky::new(&spd3()).unwrap();
        assert!((c.log_det() - 2025.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        let err = Cholesky::new(&a).unwrap_err();
        assert!(matches!(
            err,
            LinalgError::NotPositiveDefinite { pivot: 1, .. }
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(0, 0)).unwrap_err(),
            LinalgError::InvalidDimension { .. }
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 matrix: PSD but not PD.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(Cholesky::new(&a).is_err());
        let (c, jitter) = Cholesky::new_with_jitter(&a, 1e-10, 12).unwrap();
        assert!(jitter > 0.0);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn jitter_zero_when_already_pd() {
        let (_, jitter) = Cholesky::new_with_jitter(&spd3(), 1e-10, 5).unwrap();
        assert_eq!(jitter, 0.0);
    }

    #[test]
    fn jitter_propagates_shape_errors() {
        let err = Cholesky::new_with_jitter(&Matrix::zeros(2, 3), 1e-10, 5).unwrap_err();
        assert!(matches!(err, LinalgError::NotSquare { .. }));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let c = Cholesky::new(&spd3()).unwrap();
        assert!(c.solve_vec(&[1.0, 2.0]).is_err());
        assert!(c.solve_mat(&Matrix::zeros(2, 2)).is_err());
    }
}

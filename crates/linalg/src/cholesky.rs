use crate::counters;
use crate::solve::{solve_lower, solve_lower_multi, solve_lower_tail, solve_lower_transposed};
use crate::{LinalgError, Matrix, Result};

/// Panel width of the blocked factorization. Dots in the trailing update
/// have exactly this length, so it must be large enough to amortize
/// [`dot_unrolled`]'s final reduction over the accumulator lanes.
const CHOL_BLOCK: usize = 256;

/// Rows updated together in the trailing (Schur-complement) update. Each
/// streamed panel segment is reused against `CHOL_TILE` resident rows,
/// dividing the update's memory traffic by the tile height; the tile's
/// scratch (`CHOL_TILE · CHOL_BLOCK` doubles, 8 KiB) stays in L1.
const CHOL_TILE: usize = 4;

/// Inner product with 32 independent accumulators. Breaking the single
/// serial addition chain lets the factorization's O(n³) inner products
/// pipeline and vectorize — 32 lanes give four loop-carried chains even
/// at the widest (8-lane) vector registers, enough to hide the add
/// latency — which is where kernel-matrix factorization spends nearly
/// all of its time. The tradeoff is that the accumulation order differs
/// from a plain left-to-right sum, so results agree with a serial
/// evaluation only to floating-point round-off. The lane grouping and
/// the pairwise reduction are fixed, so results are identical whatever
/// vector width the compiler picks.
#[inline]
fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let n32 = n & !31;
    let n8 = n & !7;
    let mut acc = [0.0f64; 32];
    for (ca, cb) in a[..n32].chunks_exact(32).zip(b[..n32].chunks_exact(32)) {
        for l in 0..32 {
            acc[l] += ca[l] * cb[l];
        }
    }
    // Medium tail: one 8-lane pass over what's left of the 8-multiple.
    let mut mid = [0.0f64; 8];
    for (ca, cb) in a[n32..n8].chunks_exact(8).zip(b[n32..n8].chunks_exact(8)) {
        for l in 0..8 {
            mid[l] += ca[l] * cb[l];
        }
    }
    // Pairwise fold 32 → 8 lanes, merge the medium tail, fold to one.
    for w in [16usize, 8] {
        for l in 0..w {
            acc[l] += acc[l + w];
        }
    }
    for l in 0..8 {
        acc[l] += mid[l];
    }
    for w in [4usize, 2, 1] {
        for l in 0..w {
            acc[l] += acc[l + w];
        }
    }
    let mut s = acc[0];
    for (x, y) in a[n8..].iter().zip(&b[n8..]) {
        s += x * y;
    }
    s
}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// This is the workhorse of the Gaussian-process crate: kernel matrices are
/// factored once per fit and then reused for solves, log-determinants, and
/// predictive variances.
///
/// # Example
///
/// ```
/// use linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0],
///                             &[15.0, 18.0,  0.0],
///                             &[-5.0,  0.0, 11.0]])?;
/// let chol = Cholesky::new(&a)?;
/// // Reconstruction: L Lᵀ = A.
/// let l = chol.factor();
/// let rebuilt = l.matmul(&l.transpose())?;
/// assert!((rebuilt.sub(&a)?.max_abs()) < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor; entries above the diagonal are zero.
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the caller is responsible for
    /// `a` being (numerically) symmetric.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if `a` is not square.
    /// - [`LinalgError::InvalidDimension`] if `a` is empty.
    /// - [`LinalgError::NotPositiveDefinite`] if a pivot is ≤ 0 or
    ///   non-finite; the error reports the failing pivot index and value.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::InvalidDimension {
                what: "cholesky of an empty matrix",
            });
        }
        // One aggregate counter update per factorization attempt (jitter
        // retries redo the work, so each attempt counts).
        counters::add_chol_flops((n as u64).pow(3) / 3);
        counters::add_chol_panels(n.div_ceil(CHOL_BLOCK) as u64);
        // Right-looking blocked factorization. `l` starts as the lower
        // triangle of `a` and is factored panel by panel: factor the
        // diagonal block, forward-solve the panel below it, then subtract
        // the panel's rank-`b` contribution from the trailing triangle.
        // The trailing update is the O(n³) bulk; tiling it by
        // [`CHOL_TILE`] rows reuses every streamed panel segment against
        // a tile of L1-resident rows instead of re-reading it per row.
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
        }
        let data = l.as_mut_slice();
        let mut k = 0;
        while k < n {
            let b = CHOL_BLOCK.min(n - k);
            let kb = k + b;
            // Factor the diagonal block (rows k..kb, cols k..kb); prior
            // panels have already subtracted the contribution of cols
            // `..k`, so only the in-panel prefix remains.
            for i in k..kb {
                let (prev, cur) = data.split_at_mut(i * n);
                let row_i = &mut cur[..n];
                for j in k..i {
                    let row_j = &prev[j * n..j * n + n];
                    let s = row_i[j] - dot_unrolled(&row_i[k..j], &row_j[k..j]);
                    row_i[j] = s / row_j[j];
                }
                let s = row_i[i] - dot_unrolled(&row_i[k..i], &row_i[k..i]);
                if !(s.is_finite() && s > 0.0) {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i, value: s });
                }
                row_i[i] = s.sqrt();
            }
            // Panel solve: finalize cols k..kb of every row below the
            // block against the freshly factored diagonal block.
            for i in kb..n {
                let (prev, cur) = data.split_at_mut(i * n);
                let row_i = &mut cur[..n];
                for j in k..kb {
                    let row_j = &prev[j * n..j * n + n];
                    let s = row_i[j] - dot_unrolled(&row_i[k..j], &row_j[k..j]);
                    row_i[j] = s / row_j[j];
                }
            }
            // Trailing update: l[i][j] -= ⟨L[i][k..kb], L[j][k..kb]⟩ for
            // kb ≤ j ≤ i, a tile of rows at a time.
            let mut i0 = kb;
            while i0 < n {
                let tile = CHOL_TILE.min(n - i0);
                // Stack copies of the tile rows' panel segments keep the
                // rows uniquely borrowed for the writes below.
                let mut segs = [[0.0f64; CHOL_BLOCK]; CHOL_TILE];
                for (t, seg) in segs[..tile].iter_mut().enumerate() {
                    let r = (i0 + t) * n;
                    seg[..b].copy_from_slice(&data[r + k..r + kb]);
                }
                let (prev, cur) = data.split_at_mut(i0 * n);
                // Columns shared by the whole tile: each streamed segment
                // of row j is dotted against all `tile` resident rows.
                for j in kb..i0 {
                    let seg_j = &prev[j * n + k..j * n + kb];
                    for t in 0..tile {
                        cur[t * n + j] -= dot_unrolled(&segs[t][..b], seg_j);
                    }
                }
                // Triangular fringe inside the tile (i0 ≤ j ≤ i).
                for t in 0..tile {
                    for u in 0..=t {
                        cur[t * n + i0 + u] -= dot_unrolled(&segs[t][..b], &segs[u][..b]);
                    }
                }
                i0 += tile;
            }
            k = kb;
        }
        Ok(Cholesky { l })
    }

    /// Factors `a + jitter·I`, retrying with jitter escalated by ×10 up to
    /// `max_tries` times when the factorization fails.
    ///
    /// Kernel matrices are often positive definite only up to rounding; this
    /// is the standard remedy. Returns the factorization together with the
    /// jitter that finally succeeded (`0.0` when none was needed and
    /// `jitter0 <= 0`).
    ///
    /// # Errors
    ///
    /// Propagates the last [`LinalgError::NotPositiveDefinite`] when all
    /// attempts fail, or shape errors immediately.
    pub fn new_with_jitter(a: &Matrix, jitter0: f64, max_tries: usize) -> Result<(Self, f64)> {
        match Cholesky::new(a) {
            Ok(c) => return Ok((c, 0.0)),
            Err(e @ (LinalgError::NotSquare { .. } | LinalgError::InvalidDimension { .. })) => {
                return Err(e)
            }
            Err(_) => {}
        }
        let mut jitter = if jitter0 > 0.0 { jitter0 } else { 1e-10 };
        let mut last_err = LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: f64::NAN,
        };
        for _ in 0..max_tries.max(1) {
            let mut aj = a.clone();
            aj.add_diag(jitter);
            match Cholesky::new(&aj) {
                Ok(c) => return Ok((c, jitter)),
                Err(e) => last_err = e,
            }
            jitter *= 10.0;
        }
        Err(last_err)
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Dimension `n` of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` via the two triangular solves
    /// `L z = b`, `Lᵀ x = z`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let z = solve_lower(&self.l, b)?;
        solve_lower_transposed(&self.l, &z)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_mat",
                lhs: self.l.shape(),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// Solves the single triangular system `L z = b` (useful for computing
    /// predictive variances as `‖z‖²` without the second substitution).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_lower_only(&self, b: &[f64]) -> Result<Vec<f64>> {
        solve_lower(&self.l, b)
    }

    /// Solves `L Z = B` for every column of `B` at once; each column is
    /// bit-identical to [`Cholesky::solve_lower_only`] of that column
    /// (see [`solve_lower_multi`]).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_lower_only_multi(&self, b: &Matrix) -> Result<Matrix> {
        solve_lower_multi(&self.l, b)
    }

    /// Extends a previously computed `L z = b` solution by the factor's
    /// trailing rows: `z` holds the solved prefix and `b_tail` the
    /// right-hand side for the remaining `self.dim() - z.len()` rows (see
    /// [`solve_lower_tail`]). Because [`Cholesky::extend`] leaves the old
    /// factor rows bit-identical, the result equals a from-scratch
    /// [`Cholesky::solve_lower_only`] on the extended system, bit for
    /// bit, at O(n·q) instead of O(n²) cost.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if
    /// `z.len() + b_tail.len() != self.dim()`.
    pub fn solve_lower_only_tail(&self, b_tail: &[f64], z: &mut Vec<f64>) -> Result<()> {
        solve_lower_tail(&self.l, b_tail, z)
    }

    /// Extends the factorization in place with `k` appended rows/columns:
    /// given the factor of `A₁₁`, produce the factor of
    /// `[[A₁₁, B], [Bᵀ, C]]` where `cross = B` (`n × k`) and
    /// `corner = C` (`k × k`, only its lower triangle is read).
    ///
    /// Cost is O(n²·k + n·k² + k³) — for small `k` effectively one
    /// triangular sweep instead of the O((n+k)³) full refactorization.
    /// The new rows are `L₂₁ = (L₁₁⁻¹B)ᵀ` and
    /// `L₂₂ = chol(C − L₂₁L₂₁ᵀ)`: mathematically exactly the trailing
    /// rows a from-scratch factorization of the extended matrix would
    /// produce, so the extended factor agrees with [`Cholesky::new`] on
    /// the full matrix to floating-point round-off (the inner-product
    /// accumulation orders differ).
    ///
    /// On error, `self` is left unchanged.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::ShapeMismatch`] if `cross` is not `n × k` or
    ///   `corner` is not `k × k`.
    /// - [`LinalgError::NotPositiveDefinite`] if the extended matrix is
    ///   not positive definite; the pivot index refers to the extended
    ///   matrix (i.e. it is ≥ `n`).
    pub fn extend(&mut self, cross: &Matrix, corner: &Matrix) -> Result<()> {
        let n = self.dim();
        let k = corner.rows();
        if cross.rows() != n || cross.cols() != k || corner.cols() != k {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky extend",
                lhs: cross.shape(),
                rhs: corner.shape(),
            });
        }
        if k == 0 {
            return Ok(());
        }
        // The extension's own O(n²k + nk² + k³/3) work; the inner
        // `solve_lower_multi` and `Cholesky::new(schur)` count their
        // shares through their own instrumentation.
        counters::add_chol_flops((n as u64).pow(2) * k as u64 + n as u64 * (k as u64).pow(2));
        // L₂₁ᵀ: one multi-RHS forward solve. Column r of the solution is
        // row r of L₂₁.
        let l21t = solve_lower_multi(&self.l, cross)?;
        // Schur complement C − L₂₁L₂₁ᵀ, then factor it for the
        // (new row, new column) block.
        let schur = Matrix::from_fn(k, k, |r, q| {
            if q > r {
                return 0.0;
            }
            let mut s = corner[(r, q)];
            for p in 0..n {
                s -= l21t[(p, r)] * l21t[(p, q)];
            }
            s
        });
        let l22 = Cholesky::new(&schur).map_err(|e| match e {
            LinalgError::NotPositiveDefinite { pivot, value } => LinalgError::NotPositiveDefinite {
                pivot: pivot + n,
                value,
            },
            other => other,
        })?;
        let mut l = Matrix::zeros(n + k, n + k);
        for i in 0..n {
            l.row_mut(i)[..n].copy_from_slice(self.l.row(i));
        }
        for r in 0..k {
            let row = l.row_mut(n + r);
            for p in 0..n {
                row[p] = l21t[(p, r)];
            }
            row[n..=n + r].copy_from_slice(&l22.l.row(r)[..=r]);
        }
        self.l = l;
        Ok(())
    }

    /// Log-determinant of `A`: `2 Σ log L[i][i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Explicit inverse `A⁻¹` (avoid when a solve suffices).
    ///
    /// # Errors
    ///
    /// Propagates triangular-solve failures (which cannot occur for a factor
    /// produced by [`Cholesky::new`], whose diagonal is strictly positive).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_mat(&Matrix::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]).unwrap()
    }

    #[test]
    fn factor_matches_known_result() {
        // Classic example: L = [[5,0,0],[3,3,0],[-1,1,3]].
        let c = Cholesky::new(&spd3()).unwrap();
        let l = c.factor();
        let expect = [[5.0, 0.0, 0.0], [3.0, 3.0, 0.0], [-1.0, 1.0, 3.0]];
        for i in 0..3 {
            for j in 0..3 {
                assert!((l[(i, j)] - expect[i][j]).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = c.solve_vec(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_mat_inverts() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let inv = c.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let id = Matrix::identity(3);
        assert!(prod.sub(&id).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn log_det_matches_known_value() {
        // det(A) = (5*3*3)^2 = 2025.
        let c = Cholesky::new(&spd3()).unwrap();
        assert!((c.log_det() - 2025.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        let err = Cholesky::new(&a).unwrap_err();
        assert!(matches!(
            err,
            LinalgError::NotPositiveDefinite { pivot: 1, .. }
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(0, 0)).unwrap_err(),
            LinalgError::InvalidDimension { .. }
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 matrix: PSD but not PD.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(Cholesky::new(&a).is_err());
        let (c, jitter) = Cholesky::new_with_jitter(&a, 1e-10, 12).unwrap();
        assert!(jitter > 0.0);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn jitter_zero_when_already_pd() {
        let (_, jitter) = Cholesky::new_with_jitter(&spd3(), 1e-10, 5).unwrap();
        assert_eq!(jitter, 0.0);
    }

    #[test]
    fn jitter_propagates_shape_errors() {
        let err = Cholesky::new_with_jitter(&Matrix::zeros(2, 3), 1e-10, 5).unwrap_err();
        assert!(matches!(err, LinalgError::NotSquare { .. }));
    }

    /// A deterministic SPD test matrix: `M Mᵀ + n·I` over a fixed
    /// pseudo-random `M`.
    fn spd(n: usize, salt: u64) -> Matrix {
        let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let m = Matrix::from_fn(n, n, |_, _| next());
        let mut a = m.matmul(&m.transpose()).unwrap();
        a.add_diag(n as f64);
        a
    }

    #[test]
    fn extend_matches_full_refactorization() {
        for &(n, k) in &[(1usize, 1usize), (3, 1), (4, 2), (6, 3), (12, 5)] {
            let a = spd(n + k, (n * 10 + k) as u64);
            let full = Cholesky::new(&a).unwrap();
            let mut inc = Cholesky::new(&a.submatrix(0, n, 0, n)).unwrap();
            let cross = a.submatrix(0, n, n, n + k);
            let corner = a.submatrix(n, n + k, n, n + k);
            inc.extend(&cross, &corner).unwrap();
            assert_eq!(inc.dim(), n + k);
            for i in 0..n + k {
                for j in 0..=i {
                    let (got, want) = (inc.factor()[(i, j)], full.factor()[(i, j)]);
                    assert!(
                        (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                        "n={n} k={k} entry ({i},{j}): extended {got} vs full {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn extend_rejects_bad_shapes_and_indefinite_corners() {
        let a = spd(3, 7);
        let mut c = Cholesky::new(&a).unwrap();
        let before = c.factor().clone();
        // Wrong cross height.
        assert!(matches!(
            c.extend(&Matrix::zeros(2, 1), &Matrix::zeros(1, 1))
                .unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
        // Corner not matching cross width.
        assert!(matches!(
            c.extend(&Matrix::zeros(3, 2), &Matrix::zeros(1, 1))
                .unwrap_err(),
            LinalgError::ShapeMismatch { .. }
        ));
        // Indefinite extension: a zero corner cannot be PD. The pivot
        // index refers to the extended matrix, and `self` is untouched.
        let err = c
            .extend(&Matrix::zeros(3, 1), &Matrix::zeros(1, 1))
            .unwrap_err();
        assert!(matches!(
            err,
            LinalgError::NotPositiveDefinite { pivot: 3, .. }
        ));
        assert_eq!(c.factor(), &before);
        // k = 0 is a no-op.
        c.extend(&Matrix::zeros(3, 0), &Matrix::zeros(0, 0))
            .unwrap();
        assert_eq!(c.dim(), 3);
    }

    #[test]
    fn solve_lower_only_multi_matches_per_vector() {
        let c = Cholesky::new(&spd3()).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.5], &[-2.0, 1.5], &[3.0, -0.25]]).unwrap();
        let z = c.solve_lower_only_multi(&b).unwrap();
        for col in 0..2 {
            let zc = c.solve_lower_only(&b.col(col)).unwrap();
            for i in 0..3 {
                assert_eq!(z[(i, col)], zc[i]);
            }
        }
    }

    #[test]
    fn extend_plus_tail_solve_is_bitwise_from_scratch() {
        // The predict-cache law: extend() keeps the old factor rows
        // bit-identical, so a cached prefix z = L₁₁⁻¹ b₁ extended by
        // solve_lower_only_tail equals solve_lower_only on the extended
        // factor, bit for bit.
        for &(n, k) in &[(3usize, 1usize), (5, 2), (9, 4)] {
            let a = spd(n + k, (n * 7 + k) as u64);
            let mut inc = Cholesky::new(&a.submatrix(0, n, 0, n)).unwrap();
            let b: Vec<f64> = (0..n + k).map(|i| (i as f64) * 0.7 - 1.3).collect();
            let mut z = inc.solve_lower_only(&b[..n]).unwrap();
            inc.extend(
                &a.submatrix(0, n, n, n + k),
                &a.submatrix(n, n + k, n, n + k),
            )
            .unwrap();
            inc.solve_lower_only_tail(&b[n..], &mut z).unwrap();
            let scratch = inc.solve_lower_only(&b).unwrap();
            assert_eq!(z, scratch, "n={n} k={k}");
        }
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let c = Cholesky::new(&spd3()).unwrap();
        assert!(c.solve_vec(&[1.0, 2.0]).is_err());
        assert!(c.solve_mat(&Matrix::zeros(2, 2)).is_err());
    }
}

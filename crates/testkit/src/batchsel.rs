//! Brute-force reference for the diverse top-q batch selection rule.
//!
//! [`ppatuner::select_batch`] picks its batch greedily with an
//! incrementally-maintained redundancy maximum. This module re-derives
//! the same answer the expensive way: **enumerate every size-k subset**
//! of the eligible candidates, order each subset canonically by running
//! the exact diversity objective restricted to that subset (redundancy
//! recomputed from scratch each step), and return the subset whose pick
//! sequence is lexicographically minimal under the pinned tie-break
//! order `(−score, red, −diameter, index)`.
//!
//! The greedy fast path provably produces that minimal sequence (each
//! of its picks is tuple-minimal over *all* remaining eligible
//! candidates, hence over any rival subset sharing the same prefix), so
//! the two implementations must agree **bit-for-bit** — index sequence,
//! diameters, and scores. The differential suite in
//! `tests/batch_select.rs` fuzzes that equivalence over ≥1000 seeded
//! cases, including tie-heavy quantized inputs.

use ppatuner::{BatchPick, Status, UncertaintyRegion};
use std::cmp::Ordering;

/// Naive redundancy of candidate `i` against picked `j`: 1 when `j`'s
/// pessimistic corner weakly dominates `i`'s optimistic corner, else
/// the clamped proximity term `max(0, 1 − dist/radius)`. Mirrors the
/// fast path's formula term by term (same dimension order, same
/// expression shape) so agreement is exact, not approximate.
fn pair_redundancy(
    candidates: &[Vec<f64>],
    regions: &[UncertaintyRegion],
    i: usize,
    j: usize,
    radius: f64,
) -> f64 {
    let shadowed = regions[j]
        .pessimistic()
        .iter()
        .zip(regions[i].optimistic())
        .all(|(&pj, &oi)| pj <= oi);
    if shadowed {
        return 1.0;
    }
    let dist = candidates[i]
        .iter()
        .zip(&candidates[j])
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    (1.0 - dist / radius).max(0.0)
}

/// One step of a canonical sequence: the pick's score, redundancy at
/// pick time, diameter, and candidate index.
type PickTuple = (f64, f64, f64, usize);

/// Total order on pick tuples: lexicographic on
/// `(−score, red, −diameter, index)` under IEEE total order — i.e. the
/// *better* pick (higher score, lower redundancy, longer diameter,
/// smaller index) compares `Less`.
fn pick_cmp(a: &PickTuple, b: &PickTuple) -> Ordering {
    b.0.total_cmp(&a.0)
        .then_with(|| a.1.total_cmp(&b.1))
        .then_with(|| b.2.total_cmp(&a.2))
        .then_with(|| a.3.cmp(&b.3))
}

/// Orders `subset` canonically: repeatedly take the remaining member
/// with the minimal pick tuple, recomputing each member's redundancy
/// from scratch as the max over all already-ordered members.
fn canonical_sequence(
    subset: &[usize],
    candidates: &[Vec<f64>],
    regions: &[UncertaintyRegion],
    diameters: &[f64],
    diversity: f64,
    radius: f64,
) -> Vec<PickTuple> {
    let mut ordered: Vec<usize> = Vec::with_capacity(subset.len());
    let mut seq: Vec<PickTuple> = Vec::with_capacity(subset.len());
    while ordered.len() < subset.len() {
        let mut best: Option<PickTuple> = None;
        for &i in subset.iter().filter(|i| !ordered.contains(i)) {
            // Fresh maximum over the prefix — deliberately not the fast
            // path's running update, to make the differential meaningful.
            let mut red = 0.0_f64;
            for &j in &ordered {
                let r = pair_redundancy(candidates, regions, i, j, radius);
                if r > red {
                    red = r;
                }
            }
            let diam = diameters[i];
            let tuple = (diam * (1.0 - diversity * red), red, diam, i);
            if best
                .as_ref()
                .is_none_or(|b| pick_cmp(&tuple, b) == Ordering::Less)
            {
                best = Some(tuple);
            }
        }
        let tuple = best.expect("subset non-empty while ordering");
        ordered.push(tuple.3);
        seq.push(tuple);
    }
    seq
}

/// Lexicographic comparison of two equal-length canonical sequences.
fn sequence_cmp(a: &[PickTuple], b: &[PickTuple]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        match pick_cmp(x, y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Visits every size-`k` subset of `items`, in index order.
fn for_each_subset(items: &[usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    fn recurse(
        items: &[usize],
        k: usize,
        start: usize,
        current: &mut Vec<usize>,
        visit: &mut impl FnMut(&[usize]),
    ) {
        if current.len() == k {
            visit(current);
            return;
        }
        let needed = k - current.len();
        for idx in start..=items.len().saturating_sub(needed) {
            current.push(items[idx]);
            recurse(items, k, idx + 1, current, visit);
            current.pop();
        }
    }
    if k == 0 {
        visit(&[]);
        return;
    }
    if k > items.len() {
        return;
    }
    recurse(items, k, 0, &mut Vec::with_capacity(k), visit);
}

/// Brute-force reference for [`ppatuner::select_batch`]: enumerates all
/// size-`min(q, eligible)` subsets of the eligible candidates, orders
/// each canonically under the exact diversity objective, and returns
/// the lexicographically minimal sequence. Exponential in `q` — test
/// sizes only.
pub fn reference_select_batch(
    candidates: &[Vec<f64>],
    regions: &[UncertaintyRegion],
    statuses: &[Status],
    evaluated: &[bool],
    q: usize,
    diversity: f64,
    radius: f64,
) -> Vec<BatchPick> {
    assert_eq!(
        candidates.len(),
        regions.len(),
        "reference: length mismatch"
    );
    assert_eq!(
        candidates.len(),
        statuses.len(),
        "reference: length mismatch"
    );
    assert_eq!(
        candidates.len(),
        evaluated.len(),
        "reference: length mismatch"
    );
    let diameters: Vec<f64> = regions.iter().map(|r| r.diameter()).collect();
    let eligible: Vec<usize> = (0..candidates.len())
        .filter(|&i| statuses[i].is_active() && !evaluated[i] && diameters[i] > 0.0)
        .collect();
    let k = q.min(eligible.len());
    let mut best: Option<Vec<PickTuple>> = None;
    for_each_subset(&eligible, k, &mut |subset| {
        let seq = canonical_sequence(subset, candidates, regions, &diameters, diversity, radius);
        if best
            .as_ref()
            .is_none_or(|b| sequence_cmp(&seq, b) == Ordering::Less)
        {
            best = Some(seq);
        }
    });
    best.unwrap_or_default()
        .into_iter()
        .map(|(score, _, diameter, index)| BatchPick {
            index,
            diameter,
            score,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(lo: &[f64], hi: &[f64]) -> UncertaintyRegion {
        let mut u = UncertaintyRegion::unbounded(lo.len());
        u.intersect(lo, hi);
        u
    }

    #[test]
    fn subset_enumeration_counts_are_binomial() {
        let items: Vec<usize> = (0..6).collect();
        for (k, want) in [(0usize, 1usize), (1, 6), (2, 15), (3, 20), (6, 1)] {
            let mut count = 0;
            for_each_subset(&items, k, &mut |s| {
                assert_eq!(s.len(), k);
                count += 1;
            });
            assert_eq!(count, want, "C(6, {k})");
        }
        let mut none = 0;
        for_each_subset(&items, 7, &mut |_| none += 1);
        assert_eq!(none, 0, "k > n yields no subsets");
    }

    #[test]
    fn reference_q1_is_argmax_diameter() {
        let cands: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let regions = vec![
            boxed(&[0.0, 0.0], &[1.0, 0.0]),
            boxed(&[5.0, 0.0], &[8.0, 0.0]),
            boxed(&[0.0, 5.0], &[3.0, 5.0]),
            boxed(&[9.0, 9.0], &[9.5, 9.0]),
        ];
        let statuses = vec![Status::Undecided; 4];
        let picks = reference_select_batch(&cands, &regions, &statuses, &[false; 4], 1, 0.5, 0.25);
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].index, 1, "largest diameter, smallest index on tie");
        assert_eq!(picks[0].score, picks[0].diameter);
    }

    #[test]
    fn reference_prefers_diverse_subset() {
        // Two colocated long candidates vs one distant slightly shorter
        // one: with a strong penalty the diverse pair must win.
        let cands = vec![vec![0.0, 0.0], vec![0.01, 0.0], vec![5.0, 5.0]];
        let regions = vec![
            boxed(&[0.0, 0.0], &[2.0, 0.0]),
            boxed(&[10.0, -3.0], &[11.9, -3.0]),
            boxed(&[-5.0, 3.0], &[-3.2, 3.0]),
        ];
        let statuses = vec![Status::Undecided; 3];
        let picks = reference_select_batch(&cands, &regions, &statuses, &[false; 3], 2, 0.9, 0.25);
        let idx: Vec<usize> = picks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 2]);
    }

    #[test]
    fn reference_matches_fast_path_on_handpicked_cases() {
        let cands = vec![vec![0.0], vec![0.1], vec![2.0], vec![2.05], vec![9.0]];
        let regions = vec![
            boxed(&[0.0, 0.0], &[4.0, 0.0]),
            boxed(&[0.0, 1.0], &[3.9, 1.0]),
            boxed(&[1.0, 2.0], &[4.5, 2.0]),
            boxed(&[1.0, 3.0], &[4.4, 3.0]),
            boxed(&[2.0, 4.0], &[2.2, 4.0]),
        ];
        let statuses = vec![Status::Undecided; 5];
        for q in 0..=5 {
            let reference =
                reference_select_batch(&cands, &regions, &statuses, &[false; 5], q, 0.7, 0.5);
            let fast =
                ppatuner::select_batch(&cands, &regions, &statuses, &[false; 5], q, 0.7, 0.5);
            assert_eq!(reference, fast, "q = {q}");
        }
    }
}

//! Naive reference implementations of the `pareto` crate's algorithms.
//!
//! Everything here is written for obviousness, not speed: quadratic (or
//! exponential) scans whose correctness can be read off the definition.
//! The differential suites in `tests/` fuzz the optimized implementations
//! against these oracles.

/// Reference dominance test: `a` dominates `b` iff `a ≤ b` componentwise
/// with at least one strict improvement, computed by explicit counting.
/// Any NaN coordinate makes the pair incomparable (matching the fast
/// path's convention).
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "reference dominates: length mismatch");
    if a.iter().chain(b).any(|v| v.is_nan()) {
        return false;
    }
    let leq = a.iter().zip(b).filter(|(x, y)| x <= y).count();
    let strict = a.iter().zip(b).filter(|(x, y)| x < y).count();
    leq == a.len() && strict >= 1
}

/// Reference weak dominance: `a ≤ b` componentwise (false on any NaN).
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "reference weak dominance: length");
    if a.iter().chain(b).any(|v| v.is_nan()) {
        return false;
    }
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Reference δ-relaxed weak dominance: `a[i] ≤ b[i] + delta[i]` for all
/// `i` (Eq. 11's comparison).
///
/// # Panics
///
/// Panics when the slice lengths differ.
pub fn delta_dominates(a: &[f64], b: &[f64], delta: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "reference delta dominance: length");
    assert_eq!(a.len(), delta.len(), "reference delta dominance: delta");
    a.iter().zip(b).zip(delta).all(|((&x, &y), &d)| x <= y + d)
}

/// Reference Pareto front: O(n²) scan marking every point that no other
/// point dominates, keeping only the first of exactly-equal duplicates
/// (the fast path's dedup rule). Returns indices in ascending order.
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    let mut keep = Vec::new();
    for i in 0..points.len() {
        let mut kept = true;
        for j in 0..points.len() {
            if i == j {
                continue;
            }
            if dominates(&points[j], &points[i]) {
                kept = false;
                break;
            }
            if j < i && points[j] == points[i] && !points[i].iter().any(|v| v.is_nan()) {
                kept = false;
                break;
            }
        }
        if kept {
            keep.push(i);
        }
    }
    keep
}

/// Reference non-dominated sort: repeatedly peel the [`pareto_front`] of
/// the remaining points. Quadratic per layer, cubic overall.
pub fn non_dominated_sort(points: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..points.len()).collect();
    let mut fronts = Vec::new();
    while !remaining.is_empty() {
        // Peeling must not re-apply the duplicate rule the flat front
        // uses — the fast NSGA-II sort keeps equal points in the same
        // layer — so membership is "not dominated within the remainder".
        let front: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| !remaining.iter().any(|&j| dominates(&points[j], &points[i])))
            .collect();
        assert!(!front.is_empty(), "non-dominated sort: cycle impossible");
        remaining.retain(|i| !front.contains(i));
        fronts.push(front);
    }
    fronts
}

/// Reference hypervolume by inclusion–exclusion over *all* nonempty
/// subsets of the point set:
///
/// `HV = Σ_{∅≠S⊆P} (−1)^{|S|+1} · Π_j max(0, r_j − max_{p∈S} p_j)`.
///
/// Valid for any point set (dominated and duplicate points included — the
/// union measure is insensitive to them), exact in any dimension, and
/// exponential in `|P|`; keep inputs at ≤ ~16 points.
///
/// # Panics
///
/// Panics on dimension mismatches, NaN coordinates, or more than 24
/// points (2²⁴ subsets is the sanity cap).
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let n = points.len();
    assert!(n <= 24, "reference hypervolume: too many points ({n})");
    let d = reference.len();
    for p in points {
        assert_eq!(p.len(), d, "reference hypervolume: dimension");
        assert!(!p.iter().any(|v| v.is_nan()), "reference hypervolume: NaN");
    }
    let mut total = 0.0;
    for mask in 1u32..(1u32 << n) {
        let mut vol = 1.0;
        for j in 0..d {
            let mut worst = f64::NEG_INFINITY;
            for (i, p) in points.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    worst = worst.max(p[j]);
                }
            }
            vol *= (reference[j] - worst).max(0.0);
        }
        if mask.count_ones() % 2 == 1 {
            total += vol;
        } else {
            total -= vol;
        }
    }
    total.max(0.0)
}

/// Reference hypervolume error (Eq. 2): `(H(P) − H(P̂)) / H(P)` with both
/// sets measured by [`hypervolume`] against the same reference point.
///
/// # Panics
///
/// Panics when the golden hypervolume is not positive, or on the
/// conditions of [`hypervolume`].
pub fn hypervolume_error(golden: &[Vec<f64>], approx: &[Vec<f64>], reference: &[f64]) -> f64 {
    let h_golden = hypervolume(golden, reference);
    assert!(h_golden > 0.0, "reference hv error: golden HV must be > 0");
    (h_golden - hypervolume(approx, reference)) / h_golden
}

/// Reference ADRS (Eq. 3): materialize the full |golden| × |approx|
/// deviation matrix `δ(a, p̂) = max_j |a_j − p̂_j| / |a_j|`, then take the
/// row minima and average them.
///
/// # Panics
///
/// Panics on empty sets, dimension mismatches, NaN, or a zero golden
/// coordinate.
pub fn adrs(golden: &[Vec<f64>], approx: &[Vec<f64>]) -> f64 {
    assert!(!golden.is_empty() && !approx.is_empty(), "reference adrs");
    let d = golden[0].len();
    let mut matrix = vec![vec![0.0f64; approx.len()]; golden.len()];
    for (gi, a) in golden.iter().enumerate() {
        assert_eq!(a.len(), d, "reference adrs: golden dimension");
        assert!(!a.iter().any(|v| v.is_nan() || *v == 0.0), "reference adrs");
        for (ai, p) in approx.iter().enumerate() {
            assert_eq!(p.len(), d, "reference adrs: approx dimension");
            assert!(!p.iter().any(|v| v.is_nan()), "reference adrs: NaN");
            let mut worst = 0.0f64;
            for j in 0..d {
                worst = worst.max(((a[j] - p[j]) / a[j]).abs());
            }
            matrix[gi][ai] = worst;
        }
    }
    let total: f64 = matrix
        .iter()
        .map(|row| row.iter().copied().fold(f64::INFINITY, f64::min))
        .sum();
    total / golden.len() as f64
}

/// Reference additive ε-indicator:
/// `max_{a∈A} min_{p̂∈P̂} max_j (p̂_j − a_j)` via three explicit loops.
///
/// # Panics
///
/// Panics on empty sets or dimension mismatches.
pub fn epsilon_indicator(golden: &[Vec<f64>], approx: &[Vec<f64>]) -> f64 {
    assert!(
        !golden.is_empty() && !approx.is_empty(),
        "reference epsilon"
    );
    let d = golden[0].len();
    let mut worst = f64::NEG_INFINITY;
    for a in golden {
        assert_eq!(a.len(), d, "reference epsilon: dimension");
        let mut best = f64::INFINITY;
        for p in approx {
            assert_eq!(p.len(), d, "reference epsilon: dimension");
            let mut gap = f64::NEG_INFINITY;
            for j in 0..d {
                gap = gap.max(p[j] - a[j]);
            }
            best = best.min(gap);
        }
        worst = worst.max(best);
    }
    worst
}

/// The transfer kernel's cross-task correlation factor
/// `λ = 2(1/(1+a))^b − 1` (Eq. 7), in closed form. The independent
/// reference for it is [`lambda_by_quadrature`].
pub fn lambda_closed_form(a: f64, b: f64) -> f64 {
    2.0 * (1.0 / (1.0 + a)).powf(b) - 1.0
}

/// The same factor computed from its definition, `λ = 2·E[e^{−φ}] − 1`
/// with `φ ~ Gamma(shape b, scale a)`, by trapezoidal quadrature of the
/// ratio `∫ e^{−φ} φ^{b−1} e^{−φ/a} dφ / ∫ φ^{b−1} e^{−φ/a} dφ` (the
/// normalizing constant cancels, so no Γ function is needed).
///
/// Accurate to ~1e-8 for moderate `(a, b)`; used to pin the closed form.
///
/// # Panics
///
/// Panics when `a ≤ 0` or `b ≤ 0`.
pub fn lambda_by_quadrature(a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "lambda quadrature: a, b must be > 0");
    // Integrate over [0, cut] where the Gamma density is negligible
    // beyond: mean + many standard deviations, floor-bounded for tiny a·b.
    let cut = (a * b + 12.0 * a * b.sqrt().max(1.0))
        .max(20.0 * a)
        .max(1.0);
    // Substitute φ = u^p with p ≥ 2/b: the transformed weight
    // p·u^{pb−1}·e^{−u^p/a} vanishes at u = 0, removing the integrable
    // singularity of φ^{b−1} for b < 1 that the trapezoid rule cannot
    // handle. The constant p cancels in the ratio.
    let p = (2.0f64).max(2.0 / b);
    let u_max = cut.powf(1.0 / p);
    let steps = 400_000usize;
    let h = u_max / steps as f64;
    let mut numer = 0.0;
    let mut denom = 0.0;
    for k in 0..=steps {
        let u = (k as f64) * h;
        let phi = u.powf(p);
        // log-space weight avoids overflow for large b.
        let w = if u == 0.0 {
            0.0
        } else {
            ((p * b - 1.0) * u.ln() - phi / a).exp()
        };
        let trapz = if k == 0 || k == steps { 0.5 } else { 1.0 };
        numer += trapz * w * (-phi).exp();
        denom += trapz * w;
    }
    assert!(denom > 0.0, "lambda quadrature: degenerate density");
    2.0 * (numer / denom) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_front_matches_hand_example() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0],
            vec![1.0, 4.0], // duplicate of index 0: dropped by dedup rule
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn reference_hypervolume_hand_cases() {
        assert!((hypervolume(&[vec![1.0, 1.0]], &[3.0, 4.0]) - 6.0).abs() < 1e-12);
        // Two overlapping boxes: 3 + 3 − 1.
        let hv = hypervolume(&[vec![1.0, 3.0], vec![3.0, 1.0]], &[4.0, 4.0]);
        assert!((hv - 5.0).abs() < 1e-12);
        // Dominated point changes nothing.
        let hv2 = hypervolume(
            &[vec![1.0, 3.0], vec![3.0, 1.0], vec![3.5, 3.5]],
            &[4.0, 4.0],
        );
        assert!((hv2 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn reference_adrs_and_epsilon_hand_cases() {
        let golden = vec![vec![2.0, 2.0]];
        let approx = vec![vec![2.2, 2.0]];
        assert!((adrs(&golden, &approx) - 0.1).abs() < 1e-12);
        assert!((epsilon_indicator(&golden, &approx) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn lambda_quadrature_matches_closed_form() {
        for &(a, b) in &[(1.0, 1.0), (0.5, 2.0), (2.0, 0.5), (0.2, 1.0), (3.0, 3.0)] {
            let cf = lambda_closed_form(a, b);
            let qd = lambda_by_quadrature(a, b);
            assert!(
                (cf - qd).abs() < 1e-6,
                "a={a} b={b}: closed {cf} vs quadrature {qd}"
            );
        }
    }

    #[test]
    fn nds_layers_partition_everything() {
        let pts: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![(i % 3) as f64, (i / 3) as f64])
            .collect();
        let fronts = non_dominated_sort(&pts);
        let mut all: Vec<usize> = fronts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
    }
}

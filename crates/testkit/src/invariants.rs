//! Cross-crate invariant checks over recorded tuner traces.
//!
//! The checker replays an `obs` event stream (in memory, or parsed back
//! from a JSONL trace) and asserts the algorithmic laws of PPATuner's
//! Algorithm 1 that must hold on *every* run, independent of seed:
//!
//! - **Regions never grow** (Eq. 10): each candidate's uncertainty-region
//!   diameter is non-increasing across [`obs::Event::RegionSnapshot`]s,
//!   and collapses to 0 once the candidate is measured.
//! - **Decisions are monotone**: a candidate classified `Pareto` or
//!   `Dropped` never changes class again, and a dropped candidate is
//!   never evaluated afterwards (no resurrection).
//! - **Selection is greedy by diameter** (Eq. 13): every
//!   [`obs::Event::Select`] picks eligible (active, unevaluated)
//!   candidates in descending diameter order, starting at the maximum.
//! - **Batch selection is lawful**: every [`obs::Event::BatchSelect`]
//!   names at most `q` distinct eligible members, its first pick is the
//!   unpenalized max-diameter candidate (so `q = 1` degenerates to
//!   Eq. 13), scores are non-increasing along the batch, and no score
//!   exceeds its member's diameter.
//! - **Classification is δ-accurate** (Eq. 12): every candidate the loop
//!   classified Pareto is, in golden QoR, at most δ worse than the true
//!   front in at least one objective. The front is scoped to candidates
//!   that existed when the classification was made: an adaptive pool may
//!   later grow a strictly better point next to an earlier Pareto call,
//!   and that is refinement, not a misclassification.
//! - **Quarantine is terminal**: a candidate announced in
//!   [`obs::Event::CandidateQuarantined`] shows status `'q'` in every
//!   later snapshot, is never selected and never evaluated again.
//! - **Attempts are conserved**: every oracle attempt appears in the
//!   trace as exactly one [`obs::Event::ToolEval`] (accepted) or
//!   [`obs::Event::EvalFailed`] (failed), so their counts sum to the
//!   `runs + verification_runs` reported by [`obs::Event::RunEnd`].
//! - **Pool growth is append-only**: every [`obs::Event::PoolRefine`]
//!   reports a pool size equal to the previous size plus its splits
//!   (candidates are never removed or reordered), leaf counts grow by
//!   exactly one per split, and the effective pool never falls below
//!   the leaf count. Later snapshots must match the grown size.
//! - **Spans form a tree**: every [`obs::Event::SpanEnd`] closes a span
//!   that a [`obs::Event::SpanStart`] opened under the same name, span
//!   IDs are never reused, a child span only starts while its parent is
//!   open, no span closes with children still open, and a trace that
//!   contains spans at all closes every one of them by its end.
//! - **Degradation is lawful**: every [`obs::Event::DegradedFit`] names
//!   a known recovery mode (`refit-reused-hypers` or `frozen`), an
//!   in-range objective, and a consecutive streak of at least 1.
//! - **Watchdogs convert to failures**: every
//!   [`obs::Event::WatchdogFired`] carries a finite positive deadline
//!   and is followed by an [`obs::Event::EvalFailed`] of kind `timeout`
//!   for the same `(iteration, candidate, attempt)`; none is left
//!   dangling at trace end.
//! - **Recovery scans are meaningful**: every
//!   [`obs::Event::RecoveryScan`] skipped at least one damaged entry
//!   and scanned at least as many entries as it skipped.
//!
//! Violations are reported as `Err(String)` naming the event index and
//! the law broken, so a failing golden trace pinpoints the regression.

use std::collections::{BTreeMap, BTreeSet};

use obs::Event;

/// Tolerance for comparisons between floats that took different paths to
/// the trace (diameter recomputed vs. snapshotted).
const TOL: f64 = 1e-9;

/// Statistics of one checked trace (how much evidence the pass covered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InvariantReport {
    /// `RegionSnapshot` events checked.
    pub snapshots: usize,
    /// `Select` events checked.
    pub selects: usize,
    /// `BatchSelect` events checked.
    pub batch_selects: usize,
    /// `ToolEval` events checked.
    pub tool_evals: usize,
    /// `EvalFailed` events counted toward the attempt-conservation law.
    pub eval_failures: usize,
    /// `CandidateQuarantined` events checked.
    pub quarantines: usize,
    /// Pareto-classified candidates δ-accuracy-checked at the end.
    pub pareto_checked: usize,
    /// Spans opened and cleanly closed (`SpanStart`/`SpanEnd` pairs).
    pub spans: usize,
    /// `PoolRefine` events checked against the growth law.
    pub pool_refines: usize,
    /// `DegradedFit` events checked against the degradation laws.
    pub degraded_fits: usize,
    /// `WatchdogFired` events paired with their timeout `EvalFailed`.
    pub watchdog_firings: usize,
    /// `RecoveryScan` events checked.
    pub recovery_scans: usize,
}

/// Bookkeeping for one span that has started but not yet ended.
struct OpenSpanInfo {
    name: String,
    parent: Option<u64>,
    open_children: usize,
}

struct CheckerState {
    /// Candidate count, from `RunStart`.
    n: Option<usize>,
    /// Objective count, from `RunStart`.
    objectives: Option<usize>,
    /// `WatchdogFired` tuples awaiting their timeout `EvalFailed`.
    watchdog_pending: BTreeSet<(usize, usize, usize)>,
    /// Latest snapshot: per-candidate status chars and diameters.
    statuses: Vec<char>,
    diameters: Vec<f64>,
    snapshot_iteration: Option<usize>,
    /// Golden QoR of each evaluated candidate, in evaluation order.
    measured: BTreeMap<usize, Vec<f64>>,
    /// Candidates announced quarantined (terminal, never re-selected).
    quarantined: BTreeSet<usize>,
    /// δ thresholds from the most recent `Classify`.
    delta: Vec<f64>,
    /// Counts from the most recent `Classify`, awaiting its snapshot.
    pending_classify: Option<(usize, usize, usize, usize)>,
    /// Pool size at the snapshot where each candidate first showed 'p' —
    /// the universe its δ-accuracy is judged against.
    first_pareto_n: BTreeMap<usize, usize>,
    /// Leaf count reported by the last `PoolRefine`, if any.
    pool_leaves: Option<usize>,
    /// Currently open spans, keyed by id.
    open_spans: BTreeMap<u64, OpenSpanInfo>,
    /// Every span id ever started (IDs are never reused).
    span_ids: BTreeSet<u64>,
    report: InvariantReport,
}

/// Replays `events` and checks every invariant it can observe.
///
/// `truth`, when given, is the golden QoR table of *all* candidates
/// (index-aligned with the tuner's candidate list); the δ-accuracy check
/// then covers every Pareto-classified candidate, evaluated or not.
/// Without it the check falls back to the measured subset recorded in
/// `ToolEval` events.
///
/// # Errors
///
/// Returns a description of the first violated invariant, prefixed with
/// the index of the offending event.
pub fn check_trace(
    events: &[Event],
    truth: Option<&[Vec<f64>]>,
) -> Result<InvariantReport, String> {
    let mut st = CheckerState {
        n: None,
        objectives: None,
        watchdog_pending: BTreeSet::new(),
        statuses: Vec::new(),
        diameters: Vec::new(),
        snapshot_iteration: None,
        measured: BTreeMap::new(),
        quarantined: BTreeSet::new(),
        delta: Vec::new(),
        pending_classify: None,
        first_pareto_n: BTreeMap::new(),
        pool_leaves: None,
        open_spans: BTreeMap::new(),
        span_ids: BTreeSet::new(),
        report: InvariantReport::default(),
    };
    for (idx, event) in events.iter().enumerate() {
        let fail = |law: &str| -> String { format!("event {idx} ({}): {law}", event.kind()) };
        match event {
            Event::RunStart { .. } if st.n.is_some() => {
                return Err(fail("trace contains a second RunStart"));
            }
            Event::RunStart {
                candidates,
                objectives,
                ..
            } => {
                st.n = Some(*candidates);
                st.objectives = Some(*objectives);
            }
            Event::Classify {
                iteration,
                pareto,
                dropped,
                undecided,
                delta,
            } => {
                if delta.iter().any(|d| !(d.is_finite() && *d >= 0.0)) {
                    return Err(fail("δ thresholds must be finite and non-negative"));
                }
                st.delta = delta.clone();
                st.pending_classify = Some((*iteration, *pareto, *dropped, *undecided));
            }
            Event::RegionSnapshot {
                iteration,
                statuses,
                diameters,
            } => {
                check_snapshot(&mut st, *iteration, statuses, diameters)
                    .map_err(|law| fail(&law))?;
            }
            Event::Select {
                iteration,
                chosen,
                diameters,
            } => {
                check_select(&mut st, *iteration, chosen, diameters).map_err(|law| fail(&law))?;
            }
            Event::BatchSelect {
                iteration,
                q,
                chosen,
                diameters,
                scores,
            } => {
                check_batch_select(&mut st, *iteration, *q, chosen, diameters, scores)
                    .map_err(|law| fail(&law))?;
            }
            Event::ToolEval { candidate, qor, .. } => {
                check_tool_eval(&mut st, *candidate, qor).map_err(|law| fail(&law))?;
            }
            Event::EvalFailed {
                iteration,
                candidate,
                attempt,
                kind,
                ..
            } => {
                if st.quarantined.contains(candidate) {
                    return Err(fail(&format!(
                        "quarantined candidate {candidate} was attempted again"
                    )));
                }
                if st
                    .watchdog_pending
                    .remove(&(*iteration, *candidate, *attempt))
                    && kind != "timeout"
                {
                    return Err(fail(&format!(
                        "attempt {attempt} on candidate {candidate} had its watchdog \
                         fire but failed with kind {kind:?}, not \"timeout\""
                    )));
                }
                st.report.eval_failures += 1;
            }
            Event::CandidateQuarantined { candidate, .. } => {
                if st.measured.contains_key(candidate) {
                    return Err(fail(&format!(
                        "candidate {candidate} quarantined after a successful \
                         evaluation"
                    )));
                }
                if !st.quarantined.insert(*candidate) {
                    return Err(fail(&format!("candidate {candidate} quarantined twice")));
                }
                st.report.quarantines += 1;
            }
            Event::RunEnd {
                runs,
                verification_runs,
                ..
            } if st.measured.len() + st.report.eval_failures != runs + verification_runs => {
                return Err(fail(&format!(
                    "RunEnd accounts for {} attempts but the trace recorded \
                     {} accepted + {} failed",
                    runs + verification_runs,
                    st.measured.len(),
                    st.report.eval_failures
                )));
            }
            Event::PoolRefine {
                splits,
                leaves,
                pool_size,
                effective_pool,
                ..
            } => {
                check_pool_refine(&mut st, *splits, *leaves, *pool_size, *effective_pool)
                    .map_err(|law| fail(&law))?;
            }
            Event::SpanStart { id, parent, name } => {
                check_span_start(&mut st, *id, *parent, name).map_err(|law| fail(&law))?;
            }
            Event::SpanEnd { id, name, .. } => {
                check_span_end(&mut st, *id, name).map_err(|law| fail(&law))?;
            }
            Event::DegradedFit {
                objective,
                mode,
                consecutive,
                ..
            } => {
                if mode != "refit-reused-hypers" && mode != "frozen" {
                    return Err(fail(&format!("unknown degradation mode {mode:?}")));
                }
                if *consecutive < 1 {
                    return Err(fail("a degraded iteration's streak must be at least 1"));
                }
                if let Some(m) = st.objectives {
                    if *objective >= m {
                        return Err(fail(&format!(
                            "degraded objective {objective} out of range (run has {m})"
                        )));
                    }
                }
                st.report.degraded_fits += 1;
            }
            Event::WatchdogFired {
                iteration,
                candidate,
                attempt,
                deadline_s,
            } => {
                if !(deadline_s.is_finite() && *deadline_s > 0.0) {
                    return Err(fail(&format!(
                        "watchdog deadline must be finite and positive, got {deadline_s}"
                    )));
                }
                if !st
                    .watchdog_pending
                    .insert((*iteration, *candidate, *attempt))
                {
                    return Err(fail(&format!(
                        "watchdog fired twice for attempt {attempt} on candidate \
                         {candidate}"
                    )));
                }
                st.report.watchdog_firings += 1;
            }
            Event::RecoveryScan {
                scanned, skipped, ..
            } => {
                if *skipped == 0 {
                    return Err(fail(
                        "RecoveryScan with nothing skipped must not be emitted \
                         (clean resumes keep their traces unchanged)",
                    ));
                }
                if scanned < skipped {
                    return Err(fail(&format!(
                        "recovery scanned {scanned} entries but claims to have \
                         skipped {skipped}"
                    )));
                }
                st.report.recovery_scans += 1;
            }
            _ => {}
        }
    }
    if !st.watchdog_pending.is_empty() {
        let dangling: Vec<String> = st
            .watchdog_pending
            .iter()
            .map(|(it, c, a)| format!("iter {it} candidate {c} attempt {a}"))
            .collect();
        return Err(format!(
            "trace ended with {} watchdog firing(s) never converted to a \
             timeout EvalFailed: {}",
            dangling.len(),
            dangling.join(", ")
        ));
    }
    if !st.open_spans.is_empty() {
        let open: Vec<String> = st
            .open_spans
            .iter()
            .map(|(id, info)| format!("{id} ({})", info.name))
            .collect();
        return Err(format!(
            "trace ended with {} unclosed span(s): {}",
            open.len(),
            open.join(", ")
        ));
    }
    check_delta_accuracy(&mut st, truth)?;
    Ok(st.report)
}

fn check_pool_refine(
    st: &mut CheckerState,
    splits: usize,
    leaves: usize,
    pool_size: usize,
    effective_pool: f64,
) -> Result<(), String> {
    if let Some(n) = st.n {
        if pool_size != n + splits {
            return Err(format!(
                "pool grew from {n} by {splits} splits but reports size \
                 {pool_size} (growth must be append-only)"
            ));
        }
    }
    st.n = Some(pool_size);
    if let Some(prev) = st.pool_leaves {
        if leaves != prev + splits {
            return Err(format!(
                "leaf count went {prev} -> {leaves} across {splits} splits \
                 (each split adds exactly one leaf)"
            ));
        }
    }
    st.pool_leaves = Some(leaves);
    // Effective pool = box volume / smallest leaf volume, which can never
    // undercut the leaf count (the mean leaf is at least the smallest).
    if !(effective_pool.is_nan()) && effective_pool + TOL < leaves as f64 {
        return Err(format!(
            "effective pool {effective_pool} is below the leaf count {leaves}"
        ));
    }
    st.report.pool_refines += 1;
    Ok(())
}

fn check_span_start(
    st: &mut CheckerState,
    id: u64,
    parent: Option<u64>,
    name: &str,
) -> Result<(), String> {
    if !st.span_ids.insert(id) {
        return Err(format!("span id {id} ({name}) was started twice"));
    }
    if let Some(p) = parent {
        match st.open_spans.get_mut(&p) {
            Some(info) => info.open_children += 1,
            None => {
                return Err(format!(
                    "span {id} ({name}) starts under parent {p}, which is not open"
                ));
            }
        }
    }
    st.open_spans.insert(
        id,
        OpenSpanInfo {
            name: name.to_string(),
            parent,
            open_children: 0,
        },
    );
    Ok(())
}

fn check_span_end(st: &mut CheckerState, id: u64, name: &str) -> Result<(), String> {
    let Some(info) = st.open_spans.get(&id) else {
        return Err(format!("span {id} ({name}) ended without a matching start"));
    };
    if info.name != name {
        return Err(format!(
            "span {id} started as {:?} but ended as {name:?}",
            info.name
        ));
    }
    if info.open_children != 0 {
        return Err(format!(
            "span {id} ({name}) ended with {} child span(s) still open",
            info.open_children
        ));
    }
    let parent = info.parent;
    st.open_spans.remove(&id);
    if let Some(p) = parent {
        if let Some(pi) = st.open_spans.get_mut(&p) {
            pi.open_children -= 1;
        }
    }
    st.report.spans += 1;
    Ok(())
}

fn check_snapshot(
    st: &mut CheckerState,
    iteration: usize,
    statuses: &str,
    diameters: &[f64],
) -> Result<(), String> {
    let chars: Vec<char> = statuses.chars().collect();
    if let Some(n) = st.n {
        if chars.len() != n || diameters.len() != n {
            return Err(format!(
                "snapshot sizes ({}, {}) disagree with RunStart candidates ({n})",
                chars.len(),
                diameters.len()
            ));
        }
    }
    if let Some(bad) = chars.iter().find(|c| !matches!(c, 'u' | 'p' | 'd' | 'q')) {
        return Err(format!("unknown status character {bad:?}"));
    }
    // Every announced quarantine must be visible in the snapshot.
    for &cand in &st.quarantined {
        if cand < chars.len() && chars[cand] != 'q' {
            return Err(format!(
                "candidate {cand} was quarantined but the snapshot shows \
                 {:?}",
                chars[cand]
            ));
        }
    }
    // Counts must agree with the Classify event of the same iteration.
    if let Some((cl_iter, pareto, dropped, undecided)) = st.pending_classify.take() {
        if cl_iter == iteration {
            let count = |c: char| chars.iter().filter(|&&x| x == c).count();
            if (count('p'), count('d'), count('u')) != (pareto, dropped, undecided) {
                return Err(format!(
                    "snapshot counts p/d/u = {}/{}/{} disagree with Classify \
                     {pareto}/{dropped}/{undecided}",
                    count('p'),
                    count('d'),
                    count('u')
                ));
            }
        }
    }
    if !st.statuses.is_empty() {
        for (i, (&prev, &now)) in st.statuses.iter().zip(&chars).enumerate() {
            // Decisions are final: 'u' may transition anywhere, and a
            // still-active 'p' may be quarantined by a failing
            // evaluation; everything else is a resurrection.
            let allowed = now == prev || prev == 'u' || (prev == 'p' && now == 'q');
            if !allowed {
                return Err(format!(
                    "candidate {i} resurrected: status {prev:?} became {now:?} \
                     at iteration {iteration}"
                ));
            }
        }
        for (i, (&prev, &now)) in st.diameters.iter().zip(diameters).enumerate() {
            // Intersection can only shrink regions (Eq. 10).
            if now > prev + TOL * prev.abs().max(1.0) {
                return Err(format!(
                    "candidate {i}'s region grew: diameter {prev} -> {now} \
                     at iteration {iteration}"
                ));
            }
        }
    }
    for &cand in st.measured.keys() {
        if cand < diameters.len() && diameters[cand] != 0.0 {
            return Err(format!(
                "candidate {cand} was evaluated but its region did not \
                 collapse (diameter {})",
                diameters[cand]
            ));
        }
    }
    for (i, &c) in chars.iter().enumerate() {
        if c == 'p' {
            st.first_pareto_n.entry(i).or_insert(chars.len());
        }
    }
    st.statuses = chars;
    st.diameters = diameters.to_vec();
    st.snapshot_iteration = Some(iteration);
    st.report.snapshots += 1;
    Ok(())
}

fn check_select(
    st: &mut CheckerState,
    iteration: usize,
    chosen: &[usize],
    diameters: &[f64],
) -> Result<(), String> {
    if st.snapshot_iteration != Some(iteration) {
        return Err(format!(
            "Select at iteration {iteration} without a same-iteration snapshot"
        ));
    }
    if chosen.is_empty() || chosen.len() != diameters.len() {
        return Err("Select must name candidates with parallel diameters".into());
    }
    for window in diameters.windows(2) {
        if window[1] > window[0] + TOL {
            return Err(format!("selection diameters not descending: {diameters:?}"));
        }
    }
    for (&i, &d) in chosen.iter().zip(diameters) {
        if st.statuses.get(i) == Some(&'d') {
            return Err(format!("dropped candidate {i} was selected"));
        }
        if st.statuses.get(i) == Some(&'q') || st.quarantined.contains(&i) {
            return Err(format!("quarantined candidate {i} was selected"));
        }
        if st.measured.contains_key(&i) {
            return Err(format!("already-evaluated candidate {i} was selected"));
        }
        if d <= 0.0 {
            return Err(format!("candidate {i} selected with diameter {d}"));
        }
        let snap = st.diameters.get(i).copied().unwrap_or(f64::NAN);
        if (snap - d).abs() > TOL * snap.abs().max(1.0) {
            return Err(format!(
                "candidate {i}'s selection diameter {d} disagrees with \
                 snapshot {snap}"
            ));
        }
    }
    // Greedy max-diameter rule (Eq. 13): nothing eligible may exceed the
    // first pick.
    let best = st
        .diameters
        .iter()
        .enumerate()
        .filter(|&(i, _)| {
            !matches!(st.statuses[i], 'd' | 'q')
                && !st.quarantined.contains(&i)
                && !st.measured.contains_key(&i)
        })
        .map(|(_, &d)| d)
        .fold(f64::NEG_INFINITY, f64::max);
    if best > diameters[0] + TOL * best.abs().max(1.0) {
        return Err(format!(
            "selection skipped the max-diameter candidate: picked {} while \
             an eligible candidate has diameter {best}",
            diameters[0]
        ));
    }
    st.report.selects += 1;
    Ok(())
}

/// Laws of the diverse top-q batch rule. Diameter/score floats may be
/// `NaN` after a JSONL round trip (infinities serialize as null), so
/// every inequality is written to *pass* on `NaN` — same convention as
/// the snapshot-diameter laws.
fn check_batch_select(
    st: &mut CheckerState,
    iteration: usize,
    q: usize,
    chosen: &[usize],
    diameters: &[f64],
    scores: &[f64],
) -> Result<(), String> {
    if st.snapshot_iteration != Some(iteration) {
        return Err(format!(
            "BatchSelect at iteration {iteration} without a same-iteration snapshot"
        ));
    }
    if chosen.is_empty() {
        return Err("BatchSelect must name at least one member".into());
    }
    if chosen.len() != diameters.len() || chosen.len() != scores.len() {
        return Err("BatchSelect members, diameters, and scores must be parallel".into());
    }
    if chosen.len() > q {
        return Err(format!(
            "batch of {} members exceeds its budget q = {q}",
            chosen.len()
        ));
    }
    let mut seen = BTreeSet::new();
    for ((&i, &d), &s) in chosen.iter().zip(diameters).zip(scores) {
        if !seen.insert(i) {
            return Err(format!("candidate {i} appears twice in one batch"));
        }
        if st.statuses.get(i) == Some(&'d') {
            return Err(format!("dropped candidate {i} was batch-selected"));
        }
        if st.statuses.get(i) == Some(&'q') || st.quarantined.contains(&i) {
            return Err(format!("quarantined candidate {i} was batch-selected"));
        }
        if st.measured.contains_key(&i) {
            return Err(format!(
                "already-evaluated candidate {i} was batch-selected"
            ));
        }
        if d <= 0.0 {
            return Err(format!("candidate {i} batch-selected with diameter {d}"));
        }
        let snap = st.diameters.get(i).copied().unwrap_or(f64::NAN);
        if (snap - d).abs() > TOL * snap.abs().max(1.0) {
            return Err(format!(
                "candidate {i}'s batch diameter {d} disagrees with snapshot {snap}"
            ));
        }
        if s > d + TOL * d.abs().max(1.0) {
            return Err(format!(
                "candidate {i}'s score {s} exceeds its diameter {d}"
            ));
        }
    }
    // Scores are non-increasing along the greedy pick order.
    for w in scores.windows(2) {
        if w[1] > w[0] + TOL {
            return Err(format!("batch scores not descending: {scores:?}"));
        }
    }
    // The first pick is unpenalized argmax-diameter — Eq. 13 exactly.
    if (scores[0] - diameters[0]).abs() > TOL * diameters[0].abs().max(1.0) {
        return Err(format!(
            "first pick's score {} differs from its diameter {}",
            scores[0], diameters[0]
        ));
    }
    let best = st
        .diameters
        .iter()
        .enumerate()
        .filter(|&(i, _)| {
            !matches!(st.statuses[i], 'd' | 'q')
                && !st.quarantined.contains(&i)
                && !st.measured.contains_key(&i)
        })
        .map(|(_, &d)| d)
        .fold(f64::NEG_INFINITY, f64::max);
    if best > diameters[0] + TOL * best.abs().max(1.0) {
        return Err(format!(
            "batch skipped the max-diameter candidate: picked {} while an \
             eligible candidate has diameter {best}",
            diameters[0]
        ));
    }
    st.report.batch_selects += 1;
    Ok(())
}

fn check_tool_eval(st: &mut CheckerState, candidate: usize, qor: &[f64]) -> Result<(), String> {
    if st.statuses.get(candidate) == Some(&'d') {
        return Err(format!(
            "dropped candidate {candidate} was evaluated afterwards"
        ));
    }
    if st.quarantined.contains(&candidate) {
        return Err(format!(
            "quarantined candidate {candidate} was evaluated afterwards"
        ));
    }
    if qor.iter().any(|v| !v.is_finite()) {
        return Err(format!(
            "accepted evaluation of candidate {candidate} carries non-finite \
             QoR {qor:?}"
        ));
    }
    if st.measured.insert(candidate, qor.to_vec()).is_some() {
        return Err(format!("candidate {candidate} was evaluated twice"));
    }
    st.report.tool_evals += 1;
    Ok(())
}

/// Eq. 12 at trace end: every candidate the loop classified Pareto must
/// not be beaten by the true front by more than δ in **every** objective.
///
/// The front each candidate is judged against is scoped to the pool as
/// it stood when that candidate was first classified: a point the
/// adaptive pool grew *afterwards* could not have informed the decision,
/// so beating an earlier Pareto call is refinement, not inaccuracy. On a
/// fixed pool the scope is always the whole candidate set, which is the
/// original law unchanged.
fn check_delta_accuracy(
    st: &mut CheckerState,
    truth: Option<&[Vec<f64>]>,
) -> Result<InvariantReport, String> {
    if st.statuses.is_empty() || st.delta.is_empty() {
        return Ok(st.report);
    }
    // Universe for a classification made with `scope` candidates: the
    // golden table when available, else everything the tool actually
    // measured — restricted to indices below the scope. Fronts are
    // cached per distinct scope (one per refinement burst at most).
    let measured = &st.measured;
    let mut fronts: BTreeMap<usize, Vec<Vec<f64>>> = BTreeMap::new();
    let mut front_at = |scope: usize| -> Vec<Vec<f64>> {
        fronts
            .entry(scope)
            .or_insert_with(|| {
                let universe: Vec<Vec<f64>> = match truth {
                    Some(table) => table.iter().take(scope).cloned().collect(),
                    None => measured
                        .iter()
                        .filter(|(&j, _)| j < scope)
                        .map(|(_, y)| y.clone())
                        .collect(),
                };
                crate::reference::pareto_front(&universe)
                    .into_iter()
                    .map(|i| universe[i].clone())
                    .collect()
            })
            .clone()
    };
    let mut pareto_checked = 0usize;
    for (i, &status) in st.statuses.iter().enumerate() {
        if status != 'p' {
            continue;
        }
        let mine: Option<&Vec<f64>> = match truth {
            Some(table) => table.get(i),
            None => measured.get(&i),
        };
        let Some(mine) = mine else { continue };
        let scope = st
            .first_pareto_n
            .get(&i)
            .copied()
            .unwrap_or(st.statuses.len());
        for f in &front_at(scope) {
            let beaten_everywhere = f
                .iter()
                .zip(mine)
                .zip(&st.delta)
                .all(|((&fv, &mv), &d)| fv + d <= mv);
            if beaten_everywhere {
                return Err(format!(
                    "candidate {i} classified Pareto is not δ-accurate: \
                     front point {f:?} beats {mine:?} by more than δ = {:?} \
                     (classification scope: first {scope} candidates)",
                    st.delta
                ));
            }
        }
        pareto_checked += 1;
    }
    st.report.pareto_checked += pareto_checked;
    Ok(st.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(iteration: usize, statuses: &str, diameters: &[f64]) -> Event {
        Event::RegionSnapshot {
            iteration,
            statuses: statuses.into(),
            diameters: diameters.to_vec(),
        }
    }

    #[test]
    fn clean_synthetic_trace_passes() {
        let events = vec![
            Event::RunStart {
                candidates: 3,
                objectives: 2,
                dim: 1,
                initial_samples: 1,
                max_iterations: 4,
                seed: 1,
            },
            Event::ToolEval {
                iteration: 0,
                candidate: 0,
                qor: vec![1.0, 1.0],
                duration_s: 0.0,
            },
            snapshot(0, "uuu", &[0.0, 2.0, 1.0]),
            Event::Select {
                iteration: 0,
                chosen: vec![1],
                diameters: vec![2.0],
            },
            Event::ToolEval {
                iteration: 0,
                candidate: 1,
                qor: vec![2.0, 0.5],
                duration_s: 0.0,
            },
            Event::Classify {
                iteration: 1,
                pareto: 2,
                dropped: 1,
                undecided: 0,
                delta: vec![0.1, 0.1],
            },
            snapshot(1, "ppd", &[0.0, 0.0, 0.5]),
            Event::RunEnd {
                iterations: 2,
                runs: 2,
                verification_runs: 0,
                pareto: 2,
                duration_s: 0.0,
            },
        ];
        let report = check_trace(&events, None).expect("trace is clean");
        assert_eq!(report.snapshots, 2);
        assert_eq!(report.selects, 1);
        assert_eq!(report.tool_evals, 2);
        assert_eq!(report.pareto_checked, 2);
    }

    #[test]
    fn growing_region_is_rejected() {
        let events = vec![snapshot(0, "u", &[1.0]), snapshot(1, "u", &[1.5])];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("grew"), "{err}");
    }

    #[test]
    fn resurrection_is_rejected() {
        let events = vec![snapshot(0, "d", &[1.0]), snapshot(1, "u", &[1.0])];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("resurrected"), "{err}");
    }

    #[test]
    fn evaluating_dropped_candidate_is_rejected() {
        let events = vec![
            snapshot(0, "du", &[1.0, 1.0]),
            Event::ToolEval {
                iteration: 0,
                candidate: 0,
                qor: vec![1.0],
                duration_s: 0.0,
            },
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("evaluated afterwards"), "{err}");
    }

    #[test]
    fn non_greedy_selection_is_rejected() {
        let events = vec![
            snapshot(0, "uu", &[2.0, 1.0]),
            Event::Select {
                iteration: 0,
                chosen: vec![1],
                diameters: vec![1.0],
            },
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("max-diameter"), "{err}");
    }

    #[test]
    fn delta_inaccurate_pareto_is_rejected() {
        // Candidate 1 is classified Pareto but the true front point
        // (0.0, 0.0) beats its truth (1.0, 1.0) by far more than δ.
        let truth = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let events = vec![
            Event::Classify {
                iteration: 0,
                pareto: 2,
                dropped: 0,
                undecided: 0,
                delta: vec![0.1, 0.1],
            },
            snapshot(0, "pp", &[0.0, 0.0]),
        ];
        let err = check_trace(&events, Some(&truth)).unwrap_err();
        assert!(err.contains("not δ-accurate"), "{err}");
    }

    #[test]
    fn faulty_trace_with_recovery_and_quarantine_passes() {
        let events = vec![
            Event::RunStart {
                candidates: 3,
                objectives: 2,
                dim: 1,
                initial_samples: 1,
                max_iterations: 4,
                seed: 1,
            },
            // Candidate 0: fails once, recovers on retry.
            Event::EvalFailed {
                iteration: 0,
                candidate: 0,
                attempt: 1,
                kind: "crash".into(),
                detail: "license drop".into(),
            },
            Event::EvalRetry {
                iteration: 0,
                candidate: 0,
                attempt: 2,
                backoff_s: 1.0,
            },
            Event::ToolEval {
                iteration: 0,
                candidate: 0,
                qor: vec![1.0, 1.0],
                duration_s: 0.0,
            },
            snapshot(0, "uuu", &[0.0, 2.0, 1.0]),
            Event::Select {
                iteration: 0,
                chosen: vec![1],
                diameters: vec![2.0],
            },
            // Candidate 1: exhausts its budget and is quarantined.
            Event::EvalFailed {
                iteration: 0,
                candidate: 1,
                attempt: 1,
                kind: "timeout".into(),
                detail: "route".into(),
            },
            Event::EvalFailed {
                iteration: 0,
                candidate: 1,
                attempt: 2,
                kind: "timeout".into(),
                detail: "route".into(),
            },
            Event::CandidateQuarantined {
                iteration: 0,
                candidate: 1,
                attempts: 2,
            },
            // Fallback wave selects the next-longest diameter.
            Event::Select {
                iteration: 0,
                chosen: vec![2],
                diameters: vec![1.0],
            },
            Event::ToolEval {
                iteration: 0,
                candidate: 2,
                qor: vec![2.0, 0.5],
                duration_s: 0.0,
            },
            Event::Classify {
                iteration: 1,
                pareto: 2,
                dropped: 0,
                undecided: 0,
                delta: vec![0.1, 0.1],
            },
            snapshot(1, "pqp", &[0.0, 1.0, 0.0]),
            Event::RunEnd {
                iterations: 2,
                runs: 5,
                verification_runs: 0,
                pareto: 2,
                duration_s: 0.0,
            },
        ];
        let report = check_trace(&events, None).expect("faulty trace is lawful");
        assert_eq!(report.eval_failures, 3);
        assert_eq!(report.quarantines, 1);
        assert_eq!(report.tool_evals, 2);
    }

    #[test]
    fn quarantine_resurrection_is_rejected() {
        let events = vec![snapshot(0, "q", &[1.0]), snapshot(1, "u", &[1.0])];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("resurrected"), "{err}");
    }

    #[test]
    fn selecting_quarantined_candidate_is_rejected() {
        let events = vec![
            Event::CandidateQuarantined {
                iteration: 0,
                candidate: 0,
                attempts: 3,
            },
            snapshot(0, "qu", &[2.0, 1.0]),
            Event::Select {
                iteration: 0,
                chosen: vec![0],
                diameters: vec![2.0],
            },
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(
            err.contains("quarantined candidate 0 was selected"),
            "{err}"
        );
    }

    #[test]
    fn evaluating_quarantined_candidate_is_rejected() {
        let events = vec![
            Event::CandidateQuarantined {
                iteration: 0,
                candidate: 1,
                attempts: 3,
            },
            Event::ToolEval {
                iteration: 1,
                candidate: 1,
                qor: vec![1.0],
                duration_s: 0.0,
            },
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("evaluated afterwards"), "{err}");
    }

    #[test]
    fn snapshot_must_show_announced_quarantines() {
        let events = vec![
            Event::CandidateQuarantined {
                iteration: 0,
                candidate: 0,
                attempts: 3,
            },
            snapshot(0, "uu", &[1.0, 1.0]),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("was quarantined but"), "{err}");
    }

    #[test]
    fn non_finite_accepted_qor_is_rejected() {
        let events = vec![Event::ToolEval {
            iteration: 0,
            candidate: 0,
            qor: vec![f64::NAN],
            duration_s: 0.0,
        }];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn run_end_attempt_conservation_is_enforced() {
        let events = vec![
            Event::ToolEval {
                iteration: 0,
                candidate: 0,
                qor: vec![1.0],
                duration_s: 0.0,
            },
            Event::EvalFailed {
                iteration: 0,
                candidate: 1,
                attempt: 1,
                kind: "crash".into(),
                detail: "x".into(),
            },
            Event::RunEnd {
                iterations: 1,
                runs: 3, // trace only accounts for 2 attempts
                verification_runs: 0,
                pareto: 1,
                duration_s: 0.0,
            },
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("accounts for 3 attempts"), "{err}");
    }

    fn batch(iteration: usize, q: usize, chosen: &[usize], d: &[f64], s: &[f64]) -> Event {
        Event::BatchSelect {
            iteration,
            q,
            chosen: chosen.to_vec(),
            diameters: d.to_vec(),
            scores: s.to_vec(),
        }
    }

    #[test]
    fn lawful_batch_select_passes() {
        let events = vec![
            snapshot(0, "uuuu", &[3.0, 2.0, 1.0, 0.5]),
            batch(0, 3, &[0, 2, 1], &[3.0, 1.0, 2.0], &[3.0, 0.9, 0.4]),
        ];
        let report = check_trace(&events, None).expect("batch is lawful");
        assert_eq!(report.batch_selects, 1);
        assert_eq!(report.selects, 0);
    }

    #[test]
    fn oversize_batch_is_rejected() {
        let events = vec![
            snapshot(0, "uuu", &[3.0, 2.0, 1.0]),
            batch(0, 2, &[0, 1, 2], &[3.0, 2.0, 1.0], &[3.0, 1.0, 0.5]),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("exceeds its budget"), "{err}");
    }

    #[test]
    fn duplicate_batch_member_is_rejected() {
        let events = vec![
            snapshot(0, "uu", &[3.0, 2.0]),
            batch(0, 2, &[0, 0], &[3.0, 3.0], &[3.0, 1.0]),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("appears twice"), "{err}");
    }

    #[test]
    fn quarantined_batch_member_is_rejected() {
        let events = vec![
            Event::CandidateQuarantined {
                iteration: 0,
                candidate: 1,
                attempts: 3,
            },
            snapshot(0, "uq", &[3.0, 2.0]),
            batch(0, 2, &[0, 1], &[3.0, 2.0], &[3.0, 1.0]),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("quarantined candidate 1"), "{err}");
    }

    #[test]
    fn increasing_batch_scores_are_rejected() {
        let events = vec![
            snapshot(0, "uu", &[3.0, 2.0]),
            batch(0, 2, &[0, 1], &[3.0, 2.0], &[3.0, 3.5]),
        ];
        let err = check_trace(&events, None).unwrap_err();
        // Score 3.5 exceeds member 1's diameter 2.0, the first law to trip.
        assert!(err.contains("exceeds its diameter"), "{err}");
        let events = vec![
            snapshot(0, "uuu", &[3.0, 2.0, 2.0]),
            batch(0, 3, &[0, 1, 2], &[3.0, 2.0, 2.0], &[3.0, 1.0, 1.5]),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("not descending"), "{err}");
    }

    #[test]
    fn penalized_first_pick_is_rejected() {
        let events = vec![
            snapshot(0, "uu", &[3.0, 2.0]),
            batch(0, 2, &[0, 1], &[3.0, 2.0], &[2.5, 1.0]),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("differs from its diameter"), "{err}");
    }

    #[test]
    fn batch_skipping_max_diameter_is_rejected() {
        let events = vec![
            snapshot(0, "uu", &[3.0, 2.0]),
            batch(0, 1, &[1], &[2.0], &[2.0]),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("skipped the max-diameter"), "{err}");
    }

    #[test]
    fn batch_select_requires_same_iteration_snapshot() {
        let events = vec![
            snapshot(0, "uu", &[3.0, 2.0]),
            batch(1, 1, &[0], &[3.0], &[3.0]),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("without a same-iteration snapshot"), "{err}");
    }

    fn span_start(id: u64, parent: Option<u64>, name: &str) -> Event {
        Event::SpanStart {
            id,
            parent,
            name: name.into(),
        }
    }

    fn span_end(id: u64, name: &str) -> Event {
        Event::SpanEnd {
            id,
            name: name.into(),
            duration_s: 0.0,
        }
    }

    #[test]
    fn clean_span_tree_passes() {
        let events = vec![
            span_start(1, None, "run"),
            span_start(2, Some(1), "iteration"),
            span_start(3, Some(2), "gp_fit"),
            span_end(3, "gp_fit"),
            span_end(2, "iteration"),
            span_start(4, Some(1), "eval_attempt"),
            span_end(4, "eval_attempt"),
            span_end(1, "run"),
        ];
        let report = check_trace(&events, None).expect("span tree is lawful");
        assert_eq!(report.spans, 4);
    }

    #[test]
    fn span_end_without_start_is_rejected() {
        let events = vec![span_end(7, "run")];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("without a matching start"), "{err}");
    }

    #[test]
    fn duplicate_span_id_is_rejected() {
        let events = vec![
            span_start(1, None, "run"),
            span_end(1, "run"),
            span_start(1, None, "run"),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("started twice"), "{err}");
    }

    #[test]
    fn child_of_closed_parent_is_rejected() {
        let events = vec![
            span_start(1, None, "run"),
            span_end(1, "run"),
            span_start(2, Some(1), "iteration"),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("is not open"), "{err}");
    }

    #[test]
    fn parent_closing_before_child_is_rejected() {
        let events = vec![
            span_start(1, None, "run"),
            span_start(2, Some(1), "iteration"),
            span_end(1, "run"),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("still open"), "{err}");
    }

    #[test]
    fn span_name_mismatch_is_rejected() {
        let events = vec![span_start(1, None, "run"), span_end(1, "iteration")];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("ended as"), "{err}");
    }

    #[test]
    fn unclosed_spans_at_trace_end_are_rejected() {
        let events = vec![span_start(1, None, "run")];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("unclosed span"), "{err}");
    }

    fn pool_refine(splits: usize, leaves: usize, pool_size: usize, eff: f64) -> Event {
        Event::PoolRefine {
            iteration: 0,
            splits,
            leaves,
            pool_size,
            effective_pool: eff,
        }
    }

    #[test]
    fn lawful_pool_growth_passes() {
        let events = vec![
            Event::RunStart {
                candidates: 2,
                objectives: 2,
                dim: 1,
                initial_samples: 1,
                max_iterations: 4,
                seed: 1,
            },
            pool_refine(1, 3, 3, 4.0),
            snapshot(0, "uuu", &[1.0, 1.0, 1.0]),
            pool_refine(2, 5, 5, 16.0),
            snapshot(1, "uuuuu", &[1.0, 1.0, 1.0, 1.0, 1.0]),
        ];
        let report = check_trace(&events, None).expect("pool growth is lawful");
        assert_eq!(report.pool_refines, 2);
        assert_eq!(report.snapshots, 2);
    }

    #[test]
    fn non_append_only_pool_growth_is_rejected() {
        let events = vec![
            Event::RunStart {
                candidates: 4,
                objectives: 2,
                dim: 1,
                initial_samples: 1,
                max_iterations: 4,
                seed: 1,
            },
            // 1 split cannot shrink a 4-candidate pool to 3.
            pool_refine(1, 3, 3, 4.0),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("append-only"), "{err}");
    }

    #[test]
    fn pool_leaf_count_must_track_splits() {
        let events = vec![pool_refine(1, 3, 3, 4.0), pool_refine(1, 7, 4, 8.0)];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("exactly one leaf"), "{err}");
    }

    #[test]
    fn effective_pool_below_leaf_count_is_rejected() {
        let events = vec![pool_refine(2, 8, 8, 3.0)];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("below the leaf count"), "{err}");
    }

    #[test]
    fn snapshot_after_growth_must_match_grown_size() {
        let events = vec![
            Event::RunStart {
                candidates: 2,
                objectives: 2,
                dim: 1,
                initial_samples: 1,
                max_iterations: 4,
                seed: 1,
            },
            pool_refine(1, 3, 3, 4.0),
            snapshot(0, "uu", &[1.0, 1.0]),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("disagree with RunStart"), "{err}");
    }

    fn degraded(objective: usize, mode: &str, consecutive: usize) -> Event {
        Event::DegradedFit {
            iteration: 3,
            objective,
            cause: "kernel matrix factorization failed".into(),
            mode: mode.into(),
            consecutive,
        }
    }

    fn watchdog(iteration: usize, candidate: usize, attempt: usize) -> Event {
        Event::WatchdogFired {
            iteration,
            candidate,
            attempt,
            deadline_s: 30.0,
        }
    }

    fn failed(iteration: usize, candidate: usize, attempt: usize, kind: &str) -> Event {
        Event::EvalFailed {
            iteration,
            candidate,
            attempt,
            kind: kind.into(),
            detail: "x".into(),
        }
    }

    #[test]
    fn lawful_resilience_events_pass() {
        let events = vec![
            Event::RunStart {
                candidates: 3,
                objectives: 2,
                dim: 1,
                initial_samples: 1,
                max_iterations: 4,
                seed: 1,
            },
            Event::RecoveryScan {
                scanned: 3,
                skipped: 2,
                next_iteration: Some(2),
            },
            degraded(1, "refit-reused-hypers", 1),
            degraded(0, "frozen", 2),
            watchdog(3, 1, 1),
            failed(3, 1, 1, "timeout"),
        ];
        let report = check_trace(&events, None).expect("resilience trace is lawful");
        assert_eq!(report.degraded_fits, 2);
        assert_eq!(report.watchdog_firings, 1);
        assert_eq!(report.recovery_scans, 1);
        assert_eq!(report.eval_failures, 1);
    }

    #[test]
    fn unknown_degradation_mode_is_rejected() {
        let err = check_trace(&[degraded(0, "limp-home", 1)], None).unwrap_err();
        assert!(err.contains("unknown degradation mode"), "{err}");
        let err = check_trace(&[degraded(0, "frozen", 0)], None).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn degraded_objective_out_of_range_is_rejected() {
        let events = vec![
            Event::RunStart {
                candidates: 3,
                objectives: 2,
                dim: 1,
                initial_samples: 1,
                max_iterations: 4,
                seed: 1,
            },
            degraded(2, "frozen", 1),
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn watchdog_without_timeout_failure_is_rejected() {
        // Dangling at trace end.
        let err = check_trace(&[watchdog(0, 1, 1)], None).unwrap_err();
        assert!(err.contains("never converted"), "{err}");
        // Converted to the wrong failure kind.
        let events = vec![watchdog(0, 1, 1), failed(0, 1, 1, "crash")];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("not \"timeout\""), "{err}");
        // Fired twice for the same attempt.
        let events = vec![watchdog(0, 1, 1), watchdog(0, 1, 1)];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("fired twice"), "{err}");
        // Non-positive deadline.
        let events = vec![Event::WatchdogFired {
            iteration: 0,
            candidate: 1,
            attempt: 1,
            deadline_s: 0.0,
        }];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("finite and positive"), "{err}");
    }

    #[test]
    fn empty_or_inconsistent_recovery_scan_is_rejected() {
        let events = vec![Event::RecoveryScan {
            scanned: 3,
            skipped: 0,
            next_iteration: Some(1),
        }];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("nothing skipped"), "{err}");
        let events = vec![Event::RecoveryScan {
            scanned: 1,
            skipped: 2,
            next_iteration: None,
        }];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("claims to have"), "{err}");
    }

    #[test]
    fn double_evaluation_is_rejected() {
        let events = vec![
            Event::ToolEval {
                iteration: 0,
                candidate: 2,
                qor: vec![1.0],
                duration_s: 0.0,
            },
            Event::ToolEval {
                iteration: 1,
                candidate: 2,
                qor: vec![1.0],
                duration_s: 0.0,
            },
        ];
        let err = check_trace(&events, None).unwrap_err();
        assert!(err.contains("twice"), "{err}");
    }
}

//! Golden-trace replay: run the deterministic reference scenario, record
//! its `obs` event stream, canonicalize it, and diff it against the
//! committed snapshot under `tests/golden/`.
//!
//! Canonicalization makes the trace byte-stable across machines:
//! wall-clock fields (`duration_s`, `gp_fit_s`) are zeroed, and every
//! float is rounded to 12 significant digits so cross-platform `libm`
//! ulp-level differences cannot flip a digit. Algorithmic drift — a
//! different candidate chosen, one more iteration, a changed λ — still
//! changes the canonical text and fails the diff.
//!
//! To accept an intentional behavior change, regenerate the snapshots:
//!
//! ```text
//! TESTKIT_BLESS=1 cargo test -p testkit
//! ```
//!
//! and review the resulting `tests/golden/*.jsonl` diff like any other
//! code change.

use std::path::PathBuf;

use obs::{Event, RecordingSink};
use ppatuner::{
    FnOracle, PpaTuner, PpaTunerConfig, SharedOracle, SourceData, TuneResult, VecOracle,
};
use serde_json::Value;

/// The environment variable that switches golden-trace tests from
/// *diff* mode to *regenerate* mode.
pub const BLESS_ENV: &str = "TESTKIT_BLESS";

/// Absolute path of the workspace-level `tests/golden/` directory where
/// blessed traces are committed.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Everything a golden run produces: the recorded trace, the tuner's
/// result, and the scenario's ground truth for invariant checking.
#[derive(Debug)]
pub struct GoldenRun {
    /// The recorded event stream, in emission order.
    pub events: Vec<Event>,
    /// The tuner's reported result.
    pub result: TuneResult,
    /// Golden QoR vectors of every candidate (the oracle's backing table).
    pub table: Vec<Vec<f64>>,
}

/// Runs the reference golden scenario: a reduced Scenario Two tuned with
/// a fixed configuration, `threads: 1`, and the shared [`crate::test_seed`].
/// Deterministic — the same binary produces the same event stream on
/// every run (the workspace's `deterministic_given_seed` test guards the
/// tuner side of that contract).
///
/// # Panics
///
/// Panics when scenario construction or the tuning run fails; both are
/// deterministic, so a panic here is a real regression.
pub fn run_golden() -> GoldenRun {
    run_golden_with_threads(1)
}

/// [`run_golden`] with an explicit thread count. The trace is required to
/// be identical for every value — restart starts are pre-drawn from the
/// sequential RNG stream and batch prediction is chunk-invariant — so the
/// golden snapshot doubles as a thread-determinism regression gate.
///
/// # Panics
///
/// Same conditions as [`run_golden`].
pub fn run_golden_with_threads(threads: usize) -> GoldenRun {
    let scenario = benchgen::Scenario::two_with_counts(9, 120, 100).with_source_budget(60);
    let space = pdsim::ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("golden scenario source data");
    let config = PpaTunerConfig {
        initial_samples: 10,
        max_iterations: 20,
        // The default τ = 1.5 (≈1.2σ regions) trades accuracy for speed;
        // the golden scenario widens the regions so the δ-accuracy law of
        // Eq. 12 — which assumes the regions cover the truth — holds
        // deterministically and the invariant checker can assert it. The
        // matching longer budget lets classification still conclude.
        tau: 3.0,
        seed: crate::test_seed(),
        threads,
        ..Default::default()
    };
    let mut oracle = VecOracle::new(table.clone());
    let sink = RecordingSink::new();
    let result = PpaTuner::new(config)
        .run_observed(&source, &candidates, &mut oracle, &sink)
        .expect("golden scenario tuning run");
    GoldenRun {
        events: sink.events(),
        result,
        table,
    }
}

/// The golden scenario tuned in q-batch mode through the concurrent
/// entry point: same scenario, configuration, and seed as [`run_golden`]
/// but with `batch_size: q` and `eval_workers: workers`, driven through
/// [`ppatuner::PpaTuner::run_concurrent`] on a [`SharedOracle`].
///
/// The trace is required to be identical for every `workers` value —
/// wave results are merged in deterministic batch order regardless of
/// which worker produced them — and at `q = 1` it must be byte-identical
/// to [`run_golden`]'s serial trace.
///
/// # Panics
///
/// Panics when scenario construction or the tuning run fails; both are
/// deterministic, so a panic here is a real regression.
pub fn run_golden_batch(q: usize, workers: usize) -> GoldenRun {
    let scenario = benchgen::Scenario::two_with_counts(9, 120, 100).with_source_budget(60);
    let space = pdsim::ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("golden scenario source data");
    let config = PpaTunerConfig {
        initial_samples: 10,
        max_iterations: 20,
        tau: 3.0, // matches run_golden; see the comment there
        seed: crate::test_seed(),
        threads: 1,
        batch_size: q,
        eval_workers: workers,
        ..Default::default()
    };
    let oracle = SharedOracle::new(VecOracle::new(table.clone()));
    let sink = RecordingSink::new();
    let result = PpaTuner::new(config)
        .run_concurrent(&source, &candidates, &oracle, &sink)
        .expect("golden batch scenario tuning run");
    GoldenRun {
        events: sink.events(),
        result,
        table,
    }
}

/// The golden scenario with the adaptive candidate pool and the
/// subset-of-data predict path both enabled: same reduced Scenario Two
/// and seed as [`run_golden`], but candidates grow in-loop (cell-tree
/// refinement) and the posterior switches to subset-of-data once the
/// training set crosses `sod_threshold`. Because grown candidates have no
/// row in the offline QoR table, the oracle is a [`FnOracle`] that decodes
/// joint-encoded points and runs the PD flow directly — the same flow
/// that generated the table, so original candidates get identical QoR.
///
/// Deterministic like the other golden runs; its snapshot pins the
/// refinement sequence (which leaf splits when) byte-for-byte.
///
/// # Panics
///
/// Panics when scenario construction or the tuning run fails; both are
/// deterministic, so a panic here is a real regression.
pub fn run_golden_pool() -> GoldenRun {
    let scenario = benchgen::Scenario::two_with_counts(9, 120, 100).with_source_budget(60);
    let space = pdsim::ObjectiveSpace::PowerDelay;
    let candidates = scenario.target_candidates();
    let table = scenario.target_table(space);
    let (sx, sy) = scenario.source_xy(space);
    let source = SourceData::new(sx, sy).expect("golden scenario source data");
    let config = PpaTunerConfig {
        initial_samples: 10,
        max_iterations: 20,
        tau: 3.0, // matches run_golden; see the comment there
        seed: crate::test_seed(),
        threads: 1,
        adaptive_pool: true,
        pool_refine_scale: 0.05,
        pool_max_refines: 4,
        pool_max_size: 160,
        sod_threshold: 64,
        sod_subset: 48,
        ..Default::default()
    };
    let joint = scenario.joint().clone();
    let flow = pdsim::PdFlow::new(scenario.target().id().design());
    let mut oracle = FnOracle::new(move |x: &[f64]| {
        let config = joint
            .decode(x)
            .expect("pool candidates decode in the joint space");
        let params = pdsim::ToolParams::from_config(&joint, &config)
            .expect("decoded configs belong to their space");
        flow.run(&params).project(space)
    });
    let sink = RecordingSink::new();
    let result = PpaTuner::new(config)
        .run_observed(&source, &candidates, &mut oracle, &sink)
        .expect("golden pool scenario tuning run");
    GoldenRun {
        events: sink.events(),
        result,
        table,
    }
}

/// Renders an event stream as canonical JSONL: one event per line, with
/// wall-clock fields zeroed and floats rounded to 12 significant digits.
pub fn canonical_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let mut value = serde_json::to_value(e);
        canonicalize(&mut value);
        out.push_str(&serde_json::to_string(&value).expect("canonical value serializes"));
        out.push('\n');
    }
    out
}

/// Fields whose values are wall-clock measurements, not behavior.
const VOLATILE_FIELDS: [&str; 3] = ["duration_s", "gp_fit_s", "predict_s"];

/// `ResourceSample` counter fields. The counters are process-global
/// atomics, so concurrently running tests (or a second run in the same
/// process) pollute the per-iteration deltas — the *presence* of the
/// sample is behavior, its magnitudes are not.
const VOLATILE_COUNTER_FIELDS: [&str; 6] = [
    "chol_flops",
    "chol_panels",
    "tri_solve_rhs",
    "fitcache_hits",
    "fitcache_misses",
    "kernel_assemblies",
];

/// `ResourceSample` counter fields added *after* the goldens above were
/// blessed. Dropping them (rather than zeroing) keeps every committed
/// snapshot byte-identical without a re-bless; they parse back as zero
/// via `#[serde(default)]`. Fold a field into
/// [`VOLATILE_COUNTER_FIELDS`] instead the next time the goldens are
/// re-blessed for a real behavior change.
const VOLATILE_DROPPED_FIELDS: [&str; 4] = [
    "predict_cache_hits",
    "predict_cache_misses",
    "predict_cache_evictions",
    "predict_chunks",
];

fn canonicalize(v: &mut Value) {
    match v {
        Value::F64(x) => *x = round_sig(*x),
        Value::Array(items) => items.iter_mut().for_each(canonicalize),
        Value::Object(fields) => {
            fields.retain(|(key, _)| !VOLATILE_DROPPED_FIELDS.contains(&key.as_str()));
            for (key, val) in fields.iter_mut() {
                if VOLATILE_FIELDS.contains(&key.as_str()) {
                    *val = Value::F64(0.0);
                } else if VOLATILE_COUNTER_FIELDS.contains(&key.as_str()) {
                    *val = Value::U64(0);
                } else {
                    canonicalize(val);
                }
            }
        }
        _ => {}
    }
}

/// Rounds to 12 significant digits through the decimal representation
/// (`{:.11e}`), which is platform-independent. Non-finite values pass
/// through untouched.
fn round_sig(x: f64) -> f64 {
    if !x.is_finite() {
        return x;
    }
    format!("{x:.11e}").parse().expect("rounded float parses")
}

/// Compares `content` against the committed golden file `name`, or
/// rewrites the file when [`BLESS_ENV`] is set.
///
/// # Panics
///
/// Panics (failing the test) when the golden file is missing or differs,
/// with the first differing line and bless instructions in the message.
pub fn check_or_bless(name: &str, content: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os(BLESS_ENV).is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, content).expect("write golden file");
        return;
    }
    let golden = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!(
            "golden file {} unreadable ({e}); generate it with \
             `{BLESS_ENV}=1 cargo test -p testkit` and commit it",
            path.display()
        ),
    };
    if golden == content {
        return;
    }
    // Locate the first divergence for an actionable message.
    let mut lineno = 0usize;
    let mut detail = String::from("traces have different lengths");
    for (i, (g, c)) in golden.lines().zip(content.lines()).enumerate() {
        if g != c {
            lineno = i + 1;
            detail = format!("golden: {g}\n   got: {c}");
            break;
        }
    }
    if lineno == 0 {
        lineno = golden.lines().count().min(content.lines().count()) + 1;
    }
    panic!(
        "golden trace `{name}` drifted at line {lineno} \
         ({} golden lines vs {} recorded):\n{detail}\n\
         If this change is intentional, re-bless with \
         `{BLESS_ENV}=1 cargo test -p testkit` and commit the diff.",
        golden.lines().count(),
        content.lines().count()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_zeroes_wall_clock_and_rounds() {
        let events = [
            Event::ToolEval {
                iteration: 1,
                candidate: 3,
                qor: vec![0.1 + 0.2, 1.0],
                duration_s: 123.456,
            },
            Event::Message { text: "hi".into() },
        ];
        let text = canonical_jsonl(&events);
        let mut lines = text.lines();
        let first = lines.next().unwrap();
        assert!(
            first.contains("\"duration_s\":0"),
            "wall clock must be zeroed: {first}"
        );
        // 0.1 + 0.2 = 0.30000000000000004 rounds to exactly 0.3 at 12
        // significant digits.
        assert!(first.contains("0.3,"), "rounding failed: {first}");
        assert_eq!(lines.next().unwrap(), r#"{"Message":{"text":"hi"}}"#);
        assert!(lines.next().is_none());
    }

    #[test]
    fn canonicalization_zeroes_resource_counters_as_integers() {
        let events = [Event::ResourceSample {
            iteration: 2,
            chol_flops: 12345,
            chol_panels: 7,
            tri_solve_rhs: 99,
            fitcache_hits: 3,
            fitcache_misses: 1,
            kernel_assemblies: 4,
            predict_cache_hits: 40,
            predict_cache_misses: 8,
            predict_cache_evictions: 3,
            predict_chunks: 12,
        }];
        let text = canonical_jsonl(&events);
        let line = text.lines().next().unwrap();
        // Counters are zeroed but stay integers (no `.0` suffix), and the
        // iteration — real behavior — survives.
        assert!(line.contains("\"chol_flops\":0,"), "{line}");
        assert!(line.contains("\"kernel_assemblies\":0"), "{line}");
        assert!(line.contains("\"iteration\":2"), "{line}");
        assert!(!line.contains("12345"), "{line}");
        // Post-bless counters are dropped entirely so committed goldens
        // stay byte-identical.
        assert!(!line.contains("predict_cache"), "{line}");
        assert!(!line.contains("predict_chunks"), "{line}");
    }

    #[test]
    fn round_sig_is_stable_and_idempotent() {
        for &x in &[0.1, 1.0 / 3.0, 6.02e23, -2.5e-7, 0.0, f64::INFINITY] {
            let once = round_sig(x);
            assert_eq!(round_sig(once), once, "idempotence at {x}");
        }
        assert!(round_sig(f64::NAN).is_nan());
    }
}

//! Dense-inverse reference implementation of the exact (transfer) GP
//! posterior.
//!
//! The `gp` crate predicts through a jittered Cholesky factorization and
//! triangular solves. This module recomputes the same posterior the slow,
//! textbook way: assemble the joint kernel matrix, invert it outright with
//! Gauss–Jordan elimination, and apply the closed-form equations
//!
//! `μ(x) = k*ᵀ (K + Λ)⁻¹ z`,  `σ²(x) = k(x,x) − k*ᵀ (K + Λ)⁻¹ k*`,
//!
//! with its own naive squared-exponential kernel, cross-task λ factor
//! (Eq. 7), and per-task output standardization. Nothing numerical is
//! shared with the fast path except `f64` itself.

use gp::{TaskData, TransferGpConfig};

/// Reference squared-exponential kernel value
/// `σ² · exp(−½ Σ_j ((a_j − b_j)/ℓ_j)²)`, written out directly.
pub fn se_kernel(a: &[f64], b: &[f64], signal_var: f64, lengthscales: &[f64]) -> f64 {
    let mut s = 0.0;
    for j in 0..lengthscales.len() {
        let d = (a[j] - b[j]) / lengthscales[j];
        s += d * d;
    }
    signal_var * (-0.5 * s).exp()
}

/// Inverts a dense `n × n` matrix (row-major) by Gauss–Jordan elimination
/// with partial pivoting. Deliberately has no fast path and no symmetry
/// assumption — it is the independent oracle the Cholesky solves are
/// checked against.
///
/// # Panics
///
/// Panics when the matrix is not square or is numerically singular
/// (pivot below `1e-300`).
pub fn invert_dense(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    for row in a {
        assert_eq!(row.len(), n, "invert_dense: matrix must be square");
    }
    // Augmented [A | I], reduced in place to [I | A⁻¹].
    let mut aug: Vec<Vec<f64>> = a
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = row.clone();
            r.extend((0..n).map(|j| if i == j { 1.0 } else { 0.0 }));
            r
        })
        .collect();
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                aug[i][col]
                    .abs()
                    .partial_cmp(&aug[j][col].abs())
                    .expect("invert_dense: NaN pivot")
            })
            .expect("invert_dense: empty pivot range");
        aug.swap(col, pivot_row);
        let pivot = aug[col][col];
        assert!(pivot.abs() > 1e-300, "invert_dense: singular matrix");
        for v in &mut aug[col] {
            *v /= pivot;
        }
        let pivot_vals = aug[col].clone();
        for (row, values) in aug.iter_mut().enumerate() {
            if row == col {
                continue;
            }
            let factor = values[col];
            if factor == 0.0 {
                continue;
            }
            for (dst, &src) in values.iter_mut().zip(&pivot_vals) {
                *dst -= factor * src;
            }
        }
    }
    aug.into_iter().map(|mut r| r.split_off(n)).collect()
}

/// `M v` for a dense matrix in row-major nested-vec form.
fn matvec(m: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
    m.iter()
        .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
        .collect()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Naive per-task output standardizer: population mean/variance, scale
/// forced to 1 for degenerate samples (empty, or variance ≤ 1e-24) —
/// the exact semantics of the fast path's `Standardizer`.
#[derive(Debug, Clone, Copy)]
struct RefStandardizer {
    mean: f64,
    scale: f64,
}

impl RefStandardizer {
    fn fit(y: &[f64]) -> Self {
        if y.is_empty() {
            return RefStandardizer {
                mean: 0.0,
                scale: 1.0,
            };
        }
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64;
        RefStandardizer {
            mean,
            scale: if var > 1e-24 { var.sqrt() } else { 1.0 },
        }
    }
}

/// The reference posterior: a fully materialized `(K̃ + Λ + jitter·I)⁻¹`.
///
/// `jitter` must be the diagonal jitter the fast path actually used
/// (`TransferGp::jitter()`, or 0 for a well-conditioned plain GP): the two
/// implementations only agree when they factor/invert the same matrix.
#[derive(Debug)]
pub struct ReferenceTransferGp {
    config: TransferGpConfig,
    x_source: Vec<Vec<f64>>,
    x_target: Vec<Vec<f64>>,
    k_inv: Vec<Vec<f64>>,
    z_joint: Vec<f64>,
    std_target: RefStandardizer,
}

impl ReferenceTransferGp {
    /// Assembles and inverts the joint kernel matrix.
    ///
    /// # Panics
    ///
    /// Panics on an empty target task or a singular joint matrix; this is
    /// test tooling, so inputs are expected to be pre-validated by the
    /// fast path.
    pub fn fit(
        source: &TaskData,
        target: &TaskData,
        config: &TransferGpConfig,
        jitter: f64,
    ) -> Self {
        assert!(!target.is_empty(), "reference GP: target must be non-empty");
        let std_source = RefStandardizer::fit(&source.y);
        let std_target = RefStandardizer::fit(&target.y);
        let n = source.len();
        let m = target.len();
        let mut z_joint = Vec::with_capacity(n + m);
        z_joint.extend(
            source
                .y
                .iter()
                .map(|&v| (v - std_source.mean) / std_source.scale),
        );
        z_joint.extend(
            target
                .y
                .iter()
                .map(|&v| (v - std_target.mean) / std_target.scale),
        );

        let point = |i: usize| -> &[f64] {
            if i < n {
                &source.x[i]
            } else {
                &target.x[i - n]
            }
        };
        let mut k = vec![vec![0.0; n + m]; n + m];
        for (i, row) in k.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let mut v = se_kernel(point(i), point(j), config.signal_var, &config.lengthscales);
                if (i < n) != (j < n) {
                    v *= config.lambda;
                }
                *cell = v;
            }
            row[i] += if i < n {
                config.noise_source
            } else {
                config.noise_target
            } + jitter;
        }
        ReferenceTransferGp {
            config: config.clone(),
            x_source: source.x.to_vec(),
            x_target: target.x.to_vec(),
            k_inv: invert_dense(&k),
            z_joint,
            std_target,
        }
    }

    fn k_star(&self, x: &[f64]) -> Vec<f64> {
        let cfg = &self.config;
        let mut k_star = Vec::with_capacity(self.x_source.len() + self.x_target.len());
        for xi in &self.x_source {
            k_star.push(cfg.lambda * se_kernel(xi, x, cfg.signal_var, &cfg.lengthscales));
        }
        for xi in &self.x_target {
            k_star.push(se_kernel(xi, x, cfg.signal_var, &cfg.lengthscales));
        }
        k_star
    }

    /// Mean and latent variance (no observation noise) for a target-task
    /// query, in natural units — the reference for
    /// `TransferGp::predict_latent`.
    pub fn predict_latent(&self, x: &[f64]) -> (f64, f64) {
        let k_star = self.k_star(x);
        let kinv_kstar = matvec(&self.k_inv, &k_star);
        let mean_z = dot(&self.z_joint, &kinv_kstar);
        let c = se_kernel(x, x, self.config.signal_var, &self.config.lengthscales);
        let var_z = (c - dot(&k_star, &kinv_kstar)).max(0.0);
        (
            mean_z * self.std_target.scale + self.std_target.mean,
            var_z * self.std_target.scale * self.std_target.scale,
        )
    }

    /// Mean and *observation* variance (latent + `β_t⁻¹`) — the reference
    /// for `TransferGp::predict`.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let (mean, var_latent) = self.predict_latent(x);
        let noise_natural =
            self.config.noise_target * self.std_target.scale * self.std_target.scale;
        (mean, var_latent + noise_natural)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauss_jordan_inverts_known_matrix() {
        let a = vec![vec![4.0, 2.0], vec![2.0, 3.0]];
        let inv = invert_dense(&a);
        // A · A⁻¹ = I.
        for (i, arow) in a.iter().enumerate() {
            for j in 0..2 {
                let v: f64 = arow.iter().zip(&inv).map(|(x, irow)| x * irow[j]).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-12, "({i},{j}) = {v}");
            }
        }
    }

    #[test]
    fn gauss_jordan_pivots_through_leading_zero() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let inv = invert_dense(&a);
        assert!((inv[0][1] - 1.0).abs() < 1e-15);
        assert!((inv[1][0] - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn gauss_jordan_rejects_singular() {
        invert_dense(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
    }

    #[test]
    fn reference_posterior_interpolates() {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).sin()).collect();
        let target = TaskData::new(x.clone(), y.clone());
        let cfg = TransferGpConfig {
            lengthscales: vec![0.3],
            signal_var: 1.0,
            lambda: 0.5,
            noise_source: 1e-6,
            noise_target: 1e-6,
        };
        let rgp = ReferenceTransferGp::fit(&TaskData::default(), &target, &cfg, 0.0);
        for (xi, yi) in x.iter().zip(&y) {
            let (m, v) = rgp.predict_latent(xi);
            assert!((m - yi).abs() < 1e-3, "{m} vs {yi}");
            assert!((0.0..1e-2).contains(&v));
        }
    }
}

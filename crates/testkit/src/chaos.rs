//! Chaos harness: a table-backed oracle with deterministic fault
//! injection, for exercising the tuner's retry / quarantine / sanitize
//! machinery end to end.
//!
//! [`FaultyVecOracle`] is to [`ppatuner::VecOracle`] what
//! [`pdsim::FaultyFlow`] is to [`pdsim::PdFlow`]: the same golden QoR
//! table, wrapped in a [`pdsim::FaultPlan`] that decides — purely from
//! `(candidate, attempt)` hashes — which attempts crash, time out, or
//! come back corrupted. Because both halves are deterministic, a chaos
//! run is exactly as reproducible as a clean one, and the *same plan* can
//! be replayed in a proptest, in CI, and at a debugger prompt.

use std::collections::HashMap;

use pdsim::{FaultDecision, FaultPlan};
use ppatuner::{EvalError, QorOracle};

/// Wall-clock budget reported by injected timeouts (arbitrary but stable,
/// so traces and goldens do not wobble).
const INJECTED_TIMEOUT_S: f64 = 3600.0;

/// A golden-table oracle that fails according to a [`FaultPlan`].
///
/// Attempt numbers are tracked per candidate across the whole run (the
/// plan's flaky bound is about consecutive failures of one candidate),
/// and every call — failed or not — counts as a tool run, mirroring how
/// a license is burned on a crashed job.
///
/// # Example
///
/// ```
/// use pdsim::FaultPlan;
/// use ppatuner::QorOracle;
/// use testkit::chaos::FaultyVecOracle;
///
/// let plan = FaultPlan { crash_prob: 1.0, flaky_max_failures: 1, ..FaultPlan::default() };
/// let mut oracle = FaultyVecOracle::new(vec![vec![1.0, 2.0]], plan);
/// assert!(oracle.evaluate(0).is_err()); // attempt 1 crashes
/// assert!(oracle.evaluate(0).is_ok()); // attempt 2 clears the flaky bound
/// assert_eq!(oracle.runs(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FaultyVecOracle {
    table: Vec<Vec<f64>>,
    plan: FaultPlan,
    attempts: HashMap<usize, usize>,
    runs: usize,
}

impl FaultyVecOracle {
    /// Wraps a golden QoR table in a fault plan.
    ///
    /// # Panics
    ///
    /// Panics when the plan fails [`FaultPlan::validate`].
    pub fn new(table: Vec<Vec<f64>>, plan: FaultPlan) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        FaultyVecOracle {
            table,
            plan,
            attempts: HashMap::new(),
            runs: 0,
        }
    }

    /// The injection recipe.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault-free QoR of candidate `index`, for assertions.
    pub fn truth(&self, index: usize) -> Option<&Vec<f64>> {
        self.table.get(index)
    }
}

impl QorOracle for FaultyVecOracle {
    fn evaluate(&mut self, index: usize) -> Result<Vec<f64>, EvalError> {
        self.runs += 1;
        let Some(y) = self.table.get(index) else {
            return Err(EvalError::OutOfRange {
                index,
                len: self.table.len(),
            });
        };
        let attempt = self.attempts.entry(index).or_insert(0);
        *attempt += 1;
        match self.plan.decide(index, *attempt) {
            FaultDecision::None => Ok(y.clone()),
            FaultDecision::Crash => Err(EvalError::Crash {
                detail: format!("injected crash (candidate {index}, attempt {attempt})"),
            }),
            FaultDecision::Timeout(stage) => Err(EvalError::Timeout {
                stage: pdsim::faults::STAGE_NAMES[stage].to_string(),
                elapsed_s: INJECTED_TIMEOUT_S,
            }),
            FaultDecision::CorruptNan => Ok(vec![f64::NAN; y.len()]),
            FaultDecision::CorruptOutlier => {
                Ok(y.iter().map(|v| v * self.plan.outlier_factor).collect())
            }
        }
    }

    fn runs(&self) -> usize {
        self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Vec<Vec<f64>> {
        (0..10).map(|i| vec![i as f64, 10.0 - i as f64]).collect()
    }

    #[test]
    fn clean_plan_is_a_vec_oracle() {
        let mut oracle = FaultyVecOracle::new(table(), FaultPlan::default());
        for i in 0..10 {
            assert_eq!(oracle.evaluate(i).unwrap(), table()[i]);
        }
        assert_eq!(oracle.runs(), 10);
    }

    #[test]
    fn always_fail_candidates_never_succeed() {
        let plan = FaultPlan {
            always_fail: vec![4],
            ..FaultPlan::default()
        };
        let mut oracle = FaultyVecOracle::new(table(), plan);
        for _ in 0..5 {
            assert!(matches!(oracle.evaluate(4), Err(EvalError::Crash { .. })));
        }
        assert_eq!(oracle.runs(), 5);
    }

    #[test]
    fn injection_is_reproducible_across_oracles() {
        let plan = FaultPlan {
            seed: 9,
            crash_prob: 0.3,
            timeout_prob: 0.2,
            nan_prob: 0.1,
            ..FaultPlan::default()
        };
        let mut a = FaultyVecOracle::new(table(), plan.clone());
        let mut b = FaultyVecOracle::new(table(), plan);
        for i in 0..10 {
            for _ in 0..3 {
                assert_eq!(a.evaluate(i).is_ok(), b.evaluate(i).is_ok(), "{i}");
            }
        }
    }

    #[test]
    fn out_of_range_is_reported() {
        let mut oracle = FaultyVecOracle::new(table(), FaultPlan::default());
        assert!(matches!(
            oracle.evaluate(99),
            Err(EvalError::OutOfRange { index: 99, len: 10 })
        ));
    }

    #[test]
    fn corruptions_surface_in_the_qor() {
        let plan = FaultPlan {
            nan_prob: 1.0,
            flaky_max_failures: 0,
            ..FaultPlan::default()
        };
        let mut oracle = FaultyVecOracle::new(table(), plan);
        let y = oracle.evaluate(0).unwrap();
        assert!(y.iter().all(|v| v.is_nan()));
    }
}

//! Chaos harness: a table-backed oracle with deterministic fault
//! injection, for exercising the tuner's retry / quarantine / sanitize
//! machinery end to end.
//!
//! [`FaultyVecOracle`] is to [`ppatuner::VecOracle`] what
//! [`pdsim::FaultyFlow`] is to [`pdsim::PdFlow`]: the same golden QoR
//! table, wrapped in a [`pdsim::FaultPlan`] that decides — purely from
//! `(candidate, attempt)` hashes — which attempts crash, time out, or
//! come back corrupted. Because both halves are deterministic, a chaos
//! run is exactly as reproducible as a clean one, and the *same plan* can
//! be replayed in a proptest, in CI, and at a debugger prompt.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pdsim::{FaultDecision, FaultPlan};
use ppatuner::{ConcurrentOracle, EvalError, QorOracle};

/// Wall-clock budget reported by injected timeouts (arbitrary but stable,
/// so traces and goldens do not wobble).
const INJECTED_TIMEOUT_S: f64 = 3600.0;

/// A golden-table oracle that fails according to a [`FaultPlan`].
///
/// Attempt numbers are tracked per candidate across the whole run (the
/// plan's flaky bound is about consecutive failures of one candidate),
/// and every call — failed or not — counts as a tool run, mirroring how
/// a license is burned on a crashed job.
///
/// # Example
///
/// ```
/// use pdsim::FaultPlan;
/// use ppatuner::QorOracle;
/// use testkit::chaos::FaultyVecOracle;
///
/// let plan = FaultPlan { crash_prob: 1.0, flaky_max_failures: 1, ..FaultPlan::default() };
/// let mut oracle = FaultyVecOracle::new(vec![vec![1.0, 2.0]], plan);
/// assert!(oracle.evaluate(0).is_err()); // attempt 1 crashes
/// assert!(oracle.evaluate(0).is_ok()); // attempt 2 clears the flaky bound
/// assert_eq!(oracle.runs(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FaultyVecOracle {
    table: Vec<Vec<f64>>,
    plan: FaultPlan,
    attempts: HashMap<usize, usize>,
    runs: usize,
}

impl FaultyVecOracle {
    /// Wraps a golden QoR table in a fault plan.
    ///
    /// # Panics
    ///
    /// Panics when the plan fails [`FaultPlan::validate`].
    pub fn new(table: Vec<Vec<f64>>, plan: FaultPlan) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        FaultyVecOracle {
            table,
            plan,
            attempts: HashMap::new(),
            runs: 0,
        }
    }

    /// The injection recipe.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault-free QoR of candidate `index`, for assertions.
    pub fn truth(&self, index: usize) -> Option<&Vec<f64>> {
        self.table.get(index)
    }
}

impl QorOracle for FaultyVecOracle {
    fn evaluate(&mut self, index: usize) -> Result<Vec<f64>, EvalError> {
        self.runs += 1;
        let Some(y) = self.table.get(index) else {
            return Err(EvalError::OutOfRange {
                index,
                len: self.table.len(),
            });
        };
        let attempt = self.attempts.entry(index).or_insert(0);
        *attempt += 1;
        match self.plan.decide(index, *attempt) {
            FaultDecision::None => Ok(y.clone()),
            FaultDecision::Crash => Err(EvalError::Crash {
                detail: format!("injected crash (candidate {index}, attempt {attempt})"),
            }),
            FaultDecision::Timeout(stage) => Err(EvalError::Timeout {
                stage: pdsim::faults::STAGE_NAMES[stage].to_string(),
                elapsed_s: INJECTED_TIMEOUT_S,
            }),
            FaultDecision::CorruptNan => Ok(vec![f64::NAN; y.len()]),
            FaultDecision::CorruptOutlier => {
                Ok(y.iter().map(|v| v * self.plan.outlier_factor).collect())
            }
        }
    }

    fn runs(&self) -> usize {
        self.runs
    }
}

/// A golden-table [`ConcurrentOracle`] where chosen `(candidate,
/// attempt)` pairs *hang* — sleep far past any reasonable deadline
/// before answering — instead of failing cleanly.
///
/// This is the liveness fault [`FaultyVecOracle`] cannot model: a
/// crashed attempt returns an error the retry machinery can route, but a
/// hung attempt never returns at all. Wrap it in a
/// [`ppatuner::WatchdogOracle`] to convert each hang into a
/// deterministic [`EvalError::Timeout`] and let the run proceed; the
/// abandoned worker eventually wakes, returns the truth into a closed
/// channel, and is dropped.
///
/// Hangs are keyed by per-candidate attempt number (first attempt is 1),
/// so a retried candidate can hang once and then succeed — which is the
/// recovery path the watchdog exists to feed.
#[derive(Debug)]
pub struct HangingOracle {
    table: Vec<Vec<f64>>,
    hangs: BTreeSet<(usize, usize)>,
    hang_s: f64,
    attempts: Mutex<HashMap<usize, usize>>,
    runs: AtomicUsize,
}

impl HangingOracle {
    /// Wraps a golden QoR table; attempts listed in `hangs` (as
    /// `(candidate, attempt)` pairs, attempts starting at 1) sleep for
    /// `hang_s` seconds before answering.
    ///
    /// # Panics
    ///
    /// Panics when `hang_s` is not finite and non-negative.
    pub fn new(
        table: Vec<Vec<f64>>,
        hangs: impl IntoIterator<Item = (usize, usize)>,
        hang_s: f64,
    ) -> Self {
        assert!(
            hang_s.is_finite() && hang_s >= 0.0,
            "hang duration must be finite and non-negative"
        );
        HangingOracle {
            table,
            hangs: hangs.into_iter().collect(),
            hang_s,
            attempts: Mutex::new(HashMap::new()),
            runs: AtomicUsize::new(0),
        }
    }
}

impl ConcurrentOracle for HangingOracle {
    fn evaluate(&self, index: usize) -> Result<Vec<f64>, EvalError> {
        self.runs.fetch_add(1, Ordering::SeqCst);
        let Some(y) = self.table.get(index) else {
            return Err(EvalError::OutOfRange {
                index,
                len: self.table.len(),
            });
        };
        let attempt = {
            let mut attempts = self.attempts.lock().expect("attempt map poisoned");
            let a = attempts.entry(index).or_insert(0);
            *a += 1;
            *a
        };
        if self.hangs.contains(&(index, attempt)) {
            std::thread::sleep(Duration::from_secs_f64(self.hang_s));
        }
        Ok(y.clone())
    }

    fn runs(&self) -> usize {
        self.runs.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Vec<Vec<f64>> {
        (0..10).map(|i| vec![i as f64, 10.0 - i as f64]).collect()
    }

    #[test]
    fn clean_plan_is_a_vec_oracle() {
        let mut oracle = FaultyVecOracle::new(table(), FaultPlan::default());
        for i in 0..10 {
            assert_eq!(oracle.evaluate(i).unwrap(), table()[i]);
        }
        assert_eq!(oracle.runs(), 10);
    }

    #[test]
    fn always_fail_candidates_never_succeed() {
        let plan = FaultPlan {
            always_fail: vec![4],
            ..FaultPlan::default()
        };
        let mut oracle = FaultyVecOracle::new(table(), plan);
        for _ in 0..5 {
            assert!(matches!(oracle.evaluate(4), Err(EvalError::Crash { .. })));
        }
        assert_eq!(oracle.runs(), 5);
    }

    #[test]
    fn injection_is_reproducible_across_oracles() {
        let plan = FaultPlan {
            seed: 9,
            crash_prob: 0.3,
            timeout_prob: 0.2,
            nan_prob: 0.1,
            ..FaultPlan::default()
        };
        let mut a = FaultyVecOracle::new(table(), plan.clone());
        let mut b = FaultyVecOracle::new(table(), plan);
        for i in 0..10 {
            for _ in 0..3 {
                assert_eq!(a.evaluate(i).is_ok(), b.evaluate(i).is_ok(), "{i}");
            }
        }
    }

    #[test]
    fn out_of_range_is_reported() {
        let mut oracle = FaultyVecOracle::new(table(), FaultPlan::default());
        assert!(matches!(
            oracle.evaluate(99),
            Err(EvalError::OutOfRange { index: 99, len: 10 })
        ));
    }

    #[test]
    fn hanging_oracle_hangs_only_the_listed_attempts() {
        let oracle = HangingOracle::new(table(), [(1, 1)], 0.05);
        let t0 = std::time::Instant::now();
        assert_eq!(oracle.evaluate(0).unwrap(), table()[0]);
        assert!(
            t0.elapsed().as_secs_f64() < 0.04,
            "candidate 0 must not hang"
        );
        let t1 = std::time::Instant::now();
        // Attempt 1 on candidate 1 hangs, attempt 2 answers promptly.
        assert_eq!(oracle.evaluate(1).unwrap(), table()[1]);
        assert!(t1.elapsed().as_secs_f64() >= 0.05);
        let t2 = std::time::Instant::now();
        assert_eq!(oracle.evaluate(1).unwrap(), table()[1]);
        assert!(t2.elapsed().as_secs_f64() < 0.04, "retry must not hang");
        assert_eq!(ConcurrentOracle::runs(&oracle), 3);
    }

    #[test]
    fn watchdog_converts_a_hang_into_a_timeout() {
        use ppatuner::{WatchdogOracle, WATCHDOG_STAGE};
        let oracle = WatchdogOracle::new(HangingOracle::new(table(), [(2, 1)], 2.0), 0.05);
        assert_eq!(oracle.evaluate(0).unwrap(), table()[0]);
        match oracle.evaluate(2) {
            Err(EvalError::Timeout { stage, elapsed_s }) => {
                assert_eq!(stage, WATCHDOG_STAGE);
                assert_eq!(elapsed_s, 0.05);
            }
            other => panic!("expected a watchdog timeout, got {other:?}"),
        }
        // The retry reaches attempt 2, which does not hang.
        assert_eq!(oracle.evaluate(2).unwrap(), table()[2]);
        assert_eq!(oracle.fired(), 1);
    }

    #[test]
    fn corruptions_surface_in_the_qor() {
        let plan = FaultPlan {
            nan_prob: 1.0,
            flaky_max_failures: 0,
            ..FaultPlan::default()
        };
        let mut oracle = FaultyVecOracle::new(table(), plan);
        let y = oracle.evaluate(0).unwrap();
        assert!(y.iter().all(|v| v.is_nan()));
    }
}

//! Differential-test plumbing: tolerance predicates and mismatch
//! reporting that keep every fuzzed case reproducible.

use std::fmt::Write as _;

/// `true` when `a` and `b` agree within `tol`, measured relative to
/// `max(1, |a|, |b|)` — absolute near zero, relative for large values.
/// Two NaNs count as agreeing (both paths rejected the input the same
/// way); a single NaN never does.
pub fn close(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= tol * 1.0f64.max(a.abs()).max(b.abs())
}

/// The default differential tolerance: the acceptance bar of the harness
/// (1e-9 relative on the scale of the larger operand).
pub const DIFF_TOL: f64 = 1e-9;

/// Asserts [`close`]`(fast, reference, DIFF_TOL)` with a diagnostic that
/// names the suite, the case index, and a debug dump of the input, so the
/// failure alone is enough to replay the case through
/// [`crate::gen::case_rng`].
///
/// # Panics
///
/// Panics (failing the test) when the values disagree.
pub fn assert_close<D: std::fmt::Debug>(
    suite: &str,
    case: u64,
    input: &D,
    fast: f64,
    reference: f64,
) {
    assert_close_tol(suite, case, input, fast, reference, DIFF_TOL);
}

/// [`assert_close`] with an explicit tolerance, for quantities whose
/// reference is itself approximate (e.g. quadrature).
///
/// # Panics
///
/// Panics (failing the test) when the values disagree.
pub fn assert_close_tol<D: std::fmt::Debug>(
    suite: &str,
    case: u64,
    input: &D,
    fast: f64,
    reference: f64,
    tol: f64,
) {
    if close(fast, reference, tol) {
        return;
    }
    let mut msg = String::new();
    let _ = writeln!(
        msg,
        "differential mismatch in `{suite}` case {case}: fast = {fast:.17e}, \
         reference = {reference:.17e}, |Δ| = {:.3e}, tol = {tol:.1e}",
        (fast - reference).abs()
    );
    let _ = writeln!(
        msg,
        "replay: gen::case_rng(testkit::test_seed(), {case}) regenerates this input:"
    );
    let _ = writeln!(msg, "{input:#?}");
    panic!("{msg}");
}

/// Asserts that two index sets (already sorted ascending) are identical,
/// with the same reproducibility diagnostics as [`assert_close`].
///
/// # Panics
///
/// Panics (failing the test) when the sets differ.
pub fn assert_same_indices<D: std::fmt::Debug>(
    suite: &str,
    case: u64,
    input: &D,
    fast: &[usize],
    reference: &[usize],
) {
    if fast == reference {
        return;
    }
    panic!(
        "differential mismatch in `{suite}` case {case}: fast = {fast:?}, \
         reference = {reference:?}\nreplay: gen::case_rng(testkit::test_seed(), {case})\n\
         input: {input:#?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_handles_scales_and_nonfinite() {
        assert!(close(1.0, 1.0 + 1e-12, 1e-9));
        assert!(close(1e12, 1e12 * (1.0 + 1e-10), 1e-9));
        assert!(!close(1.0, 1.1, 1e-9));
        assert!(close(f64::NAN, f64::NAN, 1e-9));
        assert!(!close(f64::NAN, 0.0, 1e-9));
        assert!(close(f64::INFINITY, f64::INFINITY, 1e-9));
        assert!(!close(f64::INFINITY, f64::NEG_INFINITY, 1e-9));
        assert!(close(0.0, 1e-10, 1e-9)); // absolute regime near zero
    }

    #[test]
    #[should_panic(expected = "differential mismatch in `demo` case 7")]
    fn assert_close_names_suite_and_case() {
        assert_close("demo", 7, &"input", 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "fast = [0]")]
    fn assert_same_indices_reports_both_sets() {
        assert_same_indices("demo", 0, &(), &[0], &[0, 1]);
    }
}

//! Correctness tooling for the PPATuner reproduction: reference oracles,
//! differential fuzzing, golden-trace replay, and trace invariant checks.
//!
//! The tuner's headline claims are mathematical — monotonically shrinking
//! uncertainty rectangles (Eq. 10), δ-dominance discards (Eq. 11), and an
//! ε-accurate Pareto front measured by hypervolume error and ADRS
//! (Eqs. 2–3). The optimized implementations in `pareto`, `gp`, and
//! `ppatuner` are therefore checked here against independent ground truth,
//! four ways:
//!
//! 1. **Reference oracles** ([`reference`], [`refgp`]): naive, obviously
//!    correct reimplementations — O(n²) dominance and Pareto filtering,
//!    inclusion–exclusion hypervolume, brute-force ADRS, and a
//!    dense-inverse exact transfer-GP posterior with no Cholesky fast
//!    path, including the transfer kernel's `λ = 2(1/(1+a))^b − 1`
//!    correlation factor cross-checked by numerical quadrature.
//! 2. **Differential drivers** ([`diff`], fed by [`gen`]): fuzz random
//!    inputs through the fast and reference paths and assert agreement
//!    within tight tolerance, with reproducible per-case dumps on
//!    mismatch.
//! 3. **Golden-trace replay** ([`trace`]): run the full seeded tuner loop,
//!    canonicalize its `obs` JSONL event stream, and diff it against a
//!    committed snapshot under `tests/golden/`; regenerate with
//!    `TESTKIT_BLESS=1` (the bless path).
//! 4. **Invariant checks** ([`invariants`]): consume a recorded trace and
//!    assert the algorithmic laws across iterations — regions never grow,
//!    discarded candidates never resurrect, classified points are
//!    δ-accurate against the final front, and selection always picks the
//!    max-diameter undecided candidate.
//!
//! Together these form the safety net that lets later performance work
//! (caching, parallel GP fits, incremental Cholesky updates) refactor the
//! hot paths freely: any behavioral drift fails a differential suite, a
//! golden diff, or an invariant check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batchsel;
pub mod chaos;
pub mod diff;
pub mod gen;
pub mod invariants;
pub mod reference;
pub mod refgp;
pub mod trace;

/// The single shared base seed of the workspace's deterministic tests.
///
/// Integration tests seed tuner configurations and fuzz drivers through
/// this helper (directly, or via [`test_seeds`]) instead of scattering
/// magic constants, so reseeding the whole suite is a one-line change.
pub fn test_seed() -> u64 {
    0x9e37_79b9_7f4a_7c15
}

/// `n` distinct deterministic seeds derived from [`test_seed`], for tests
/// that average over several runs.
pub fn test_seeds(n: usize) -> Vec<u64> {
    // SplitMix64 over the base seed: well-distributed, stable derivation.
    let mut state = test_seed();
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(test_seed(), test_seed());
        let seeds = test_seeds(8);
        assert_eq!(seeds, test_seeds(8));
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Prefixes are consistent: the k-th seed does not depend on n.
        assert_eq!(test_seeds(3), test_seeds(8)[..3].to_vec());
    }
}

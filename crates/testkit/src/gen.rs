//! Deterministic fuzz-input generators for the differential suites.
//!
//! Every generator takes an explicit [`rand::rngs::StdRng`], seeded from
//! [`crate::test_seed`] by the callers, so a failing case is reproducible
//! from its case index alone. Generators deliberately over-sample the
//! nasty corners (exact duplicates, points pinned to the reference
//! boundary, near-singular GP designs) that a plain uniform sampler would
//! almost never hit.

use gp::{TaskData, TransferGpConfig};
use rand::rngs::StdRng;
use rand::Rng;

/// A fresh generator for fuzz case `case` of the suite seeded by `seed`.
///
/// Mixing the case index into the seed (instead of drawing cases from one
/// shared stream) means any single failing case can be re-run in
/// isolation.
pub fn case_rng(seed: u64, case: u64) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

/// A random objective-space point set: `n` points in `dim` dimensions,
/// coordinates uniform in `[0, 1)`. With probability ~1/2 the set is then
/// salted with degenerate structure: exact duplicates of earlier points
/// and coordinates snapped to other points' values (ties).
pub fn point_set(rng: &mut StdRng, n: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut pts: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    if n >= 2 && rng.gen_bool(0.5) {
        let dupes = rng.gen_range(1..=(n / 2).max(1));
        for _ in 0..dupes {
            let src = rng.gen_range(0..pts.len());
            let dst = rng.gen_range(0..pts.len());
            if rng.gen_bool(0.5) {
                pts[dst] = pts[src].clone();
            } else {
                let j = rng.gen_range(0..dim);
                pts[dst][j] = pts[src][j];
            }
        }
    }
    pts
}

/// A point set plus a hypervolume reference point. The reference sits
/// beyond the unit cube most of the time, but with probability ~1/3 some
/// points are snapped *onto* the reference boundary in one coordinate
/// (zero-width slabs) and occasionally pushed beyond it (clamped to zero
/// contribution), the documented degenerate cases of Eq. 2.
pub fn point_set_with_reference(
    rng: &mut StdRng,
    n: usize,
    dim: usize,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut pts = point_set(rng, n, dim);
    let reference: Vec<f64> = (0..dim).map(|_| 1.0 + rng.gen_range(0.0..0.5)).collect();
    if rng.gen_bool(1.0 / 3.0) && !pts.is_empty() {
        let salted = rng.gen_range(1..=pts.len());
        for _ in 0..salted {
            let i = rng.gen_range(0..pts.len());
            let j = rng.gen_range(0..dim);
            pts[i][j] = if rng.gen_bool(0.25) {
                reference[j] + rng.gen_range(0.0..0.3)
            } else {
                reference[j]
            };
        }
    }
    (pts, reference)
}

/// A golden/approx front pair for ADRS and ε-indicator differentials.
/// Coordinates are bounded away from zero (ADRS divides by the golden
/// coordinates), and the approx set is a jittered resample of the golden
/// set so the metrics exercise their interesting (small-deviation) regime.
pub fn front_pair(rng: &mut StdRng, dim: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let n_golden = rng.gen_range(1..=8usize);
    let n_approx = rng.gen_range(1..=8usize);
    let golden: Vec<Vec<f64>> = (0..n_golden)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.2..2.0)).collect())
        .collect();
    let approx: Vec<Vec<f64>> = (0..n_approx)
        .map(|_| {
            let base = &golden[rng.gen_range(0..n_golden)];
            base.iter()
                .map(|&v| (v + rng.gen_range(-0.15..0.15)).max(0.05))
                .collect()
        })
        .collect();
    (golden, approx)
}

/// A random transfer-GP fitting problem: source and target tasks drawn
/// from noisy trigonometric surfaces over the unit cube, plus a
/// well-conditioned hyper-parameter configuration (noise floors ≥ 1e-4 so
/// the fast path's Cholesky succeeds without jitter escalation in
/// practice). Source is empty ~1/4 of the time to cover the no-transfer
/// degenerate case.
pub fn gp_problem(rng: &mut StdRng, dim: usize) -> (TaskData, TaskData, TransferGpConfig) {
    let surface = |x: &[f64], phase: f64| -> f64 {
        x.iter()
            .enumerate()
            .map(|(j, &v)| ((2.0 + j as f64) * v + phase).sin())
            .sum::<f64>()
    };
    let phase = rng.gen_range(0.0..3.0);
    let scale = rng.gen_range(0.5..20.0);
    let offset = rng.gen_range(-5.0..5.0);
    fn draw_task(
        rng: &mut StdRng,
        dim: usize,
        count: usize,
        task_phase: f64,
        task_scale: f64,
        offset: f64,
        surface: impl Fn(&[f64], f64) -> f64,
    ) -> TaskData {
        let x: Vec<Vec<f64>> = (0..count)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| task_scale * surface(p, task_phase) + offset + rng.gen_range(-0.05..0.05))
            .collect();
        TaskData::new(x, y)
    }
    let n_source = if rng.gen_bool(0.25) {
        0
    } else {
        rng.gen_range(2..=10usize)
    };
    let source = draw_task(rng, dim, n_source, phase, scale, offset, surface);
    let n_target = rng.gen_range(2..=8usize);
    let target = draw_task(
        rng,
        dim,
        n_target,
        phase + 0.3,
        scale * 1.5,
        offset,
        surface,
    );
    let config = TransferGpConfig {
        lengthscales: (0..dim).map(|_| rng.gen_range(0.2..1.0)).collect(),
        signal_var: rng.gen_range(0.5..2.0),
        lambda: rng.gen_range(-0.9..=1.0f64).min(1.0),
        noise_source: rng.gen_range(1e-4..1e-2),
        noise_target: rng.gen_range(1e-4..1e-2),
    };
    (source, target, config)
}

/// Query points for a fitted GP: a mix of fresh uniform draws and exact
/// copies of training inputs (where the posterior is most sensitive to
/// factorization differences).
pub fn gp_queries(rng: &mut StdRng, train: &TaskData, dim: usize, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            if !train.x.is_empty() && rng.gen_bool(0.3) {
                train.x[rng.gen_range(0..train.x.len())].clone()
            } else {
                (0..dim).map(|_| rng.gen::<f64>()).collect()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rngs_are_deterministic_and_case_sensitive() {
        let a: Vec<f64> = {
            let mut r = case_rng(1, 2);
            (0..4).map(|_| r.gen::<f64>()).collect()
        };
        let b: Vec<f64> = {
            let mut r = case_rng(1, 2);
            (0..4).map(|_| r.gen::<f64>()).collect()
        };
        let c: Vec<f64> = {
            let mut r = case_rng(1, 3);
            (0..4).map(|_| r.gen::<f64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generators_respect_shapes() {
        let mut rng = case_rng(crate::test_seed(), 0);
        let pts = point_set(&mut rng, 7, 3);
        assert_eq!(pts.len(), 7);
        assert!(pts.iter().all(|p| p.len() == 3));
        let (pts, reference) = point_set_with_reference(&mut rng, 5, 2);
        assert_eq!(pts.len(), 5);
        assert_eq!(reference.len(), 2);
        let (source, target, config) = gp_problem(&mut rng, 2);
        assert_eq!(config.lengthscales.len(), 2);
        assert!(!target.is_empty());
        assert!(source.x.len() == source.y.len());
        let queries = gp_queries(&mut rng, &target, 2, 6);
        assert_eq!(queries.len(), 6);
    }
}

//! Differential fuzzing: the optimized `pareto` and `gp` implementations
//! against testkit's naive reference oracles, ≥1000 random cases per
//! suite, agreement within 1e-9 relative tolerance.
//!
//! Each case re-seeds its own generator from the shared
//! [`testkit::test_seed`] and the case index (see [`gen::case_rng`]), so
//! a failure message alone reproduces the input. The `#[ignore]`d deep
//! suites re-run the same drivers with 10× the cases and larger inputs;
//! CI runs them in the nightly-style `--include-ignored` step.

use testkit::diff::{assert_close, assert_same_indices, DIFF_TOL};
use testkit::gen;
use testkit::{reference, refgp};

const CASES: u64 = 1200;

fn dominance_driver(cases: u64, max_points: usize) {
    for case in 0..cases {
        let mut rng = gen::case_rng(testkit::test_seed(), case);
        use rand::Rng;
        let dim = rng.gen_range(2..=3usize);
        let n = rng.gen_range(2..=max_points);
        let pts = gen::point_set(&mut rng, n, dim);
        // Pairwise dominance relations.
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                assert_eq!(
                    pareto::dominance::dominates(&pts[i], &pts[j]),
                    reference::dominates(&pts[i], &pts[j]),
                    "dominates mismatch, case {case}, pair ({i},{j}): {pts:?}"
                );
                assert_eq!(
                    pareto::dominance::weakly_dominates(&pts[i], &pts[j]),
                    reference::weakly_dominates(&pts[i], &pts[j]),
                    "weak dominance mismatch, case {case}, pair ({i},{j}): {pts:?}"
                );
                let delta: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..0.2)).collect();
                assert_eq!(
                    pareto::dominance::delta_dominates(&pts[i], &pts[j], &delta),
                    reference::delta_dominates(&pts[i], &pts[j], &delta),
                    "δ-dominance mismatch, case {case}, pair ({i},{j}), δ={delta:?}: {pts:?}"
                );
            }
        }
        // Front extraction and layered sorting.
        assert_same_indices(
            "pareto_front",
            case,
            &pts,
            &pareto::front::pareto_front(&pts),
            &reference::pareto_front(&pts),
        );
        let fast_layers = pareto::front::non_dominated_sort(&pts);
        let ref_layers = reference::non_dominated_sort(&pts);
        assert_eq!(
            fast_layers.len(),
            ref_layers.len(),
            "layer count mismatch, case {case}: {pts:?}"
        );
        for (k, (f, r)) in fast_layers.iter().zip(&ref_layers).enumerate() {
            let mut f = f.clone();
            let mut r = r.clone();
            f.sort_unstable();
            r.sort_unstable();
            assert_same_indices(&format!("nds layer {k}"), case, &pts, &f, &r);
        }
    }
}

fn hypervolume_driver(cases: u64, max_points: usize) {
    for case in 0..cases {
        let mut rng = gen::case_rng(testkit::test_seed(), case);
        use rand::Rng;
        let dim = rng.gen_range(2..=3usize);
        let n = rng.gen_range(1..=max_points);
        let (pts, reference_pt) = gen::point_set_with_reference(&mut rng, n, dim);
        let fast = pareto::hypervolume::hypervolume(&pts, &reference_pt)
            .expect("fast hypervolume accepts finite inputs");
        let slow = reference::hypervolume(&pts, &reference_pt);
        assert_close("hypervolume", case, &(&pts, &reference_pt), fast, slow);
    }
}

fn adrs_driver(cases: u64) {
    for case in 0..cases {
        let mut rng = gen::case_rng(testkit::test_seed(), case);
        use rand::Rng;
        let dim = rng.gen_range(2..=3usize);
        let (golden, approx) = gen::front_pair(&mut rng, dim);
        let fast = pareto::metrics::adrs(&golden, &approx).expect("fast adrs");
        let slow = reference::adrs(&golden, &approx);
        assert_close("adrs", case, &(&golden, &approx), fast, slow);

        let fast = pareto::metrics::epsilon_indicator(&golden, &approx).expect("fast epsilon");
        let slow = reference::epsilon_indicator(&golden, &approx);
        assert_close("epsilon_indicator", case, &(&golden, &approx), fast, slow);
    }
}

fn gp_posterior_driver(cases: u64, queries_per_case: usize) {
    for case in 0..cases {
        let mut rng = gen::case_rng(testkit::test_seed(), case);
        use rand::Rng;
        let dim = rng.gen_range(1..=3usize);
        let (source, target, config) = gen::gp_problem(&mut rng, dim);
        let fast = gp::TransferGp::fit(source.clone(), target.clone(), config.clone())
            .expect("fast transfer GP fits well-conditioned fuzz input");
        // The reference must invert the *same* matrix, so it takes the
        // jitter the fast path's Cholesky actually added (usually 0).
        let slow = refgp::ReferenceTransferGp::fit(&source, &target, &config, fast.jitter());
        for (q, x) in gen::gp_queries(&mut rng, &target, dim, queries_per_case)
            .iter()
            .enumerate()
        {
            let (fm, fv) = fast.predict_latent(x).expect("fast predict_latent");
            let (rm, rv) = slow.predict_latent(x);
            let input = (&source, &target, &config, x);
            assert_close(&format!("gp latent mean q{q}"), case, &input, fm, rm);
            assert_close(&format!("gp latent var q{q}"), case, &input, fv, rv);
            let (fm, fv) = fast.predict(x).expect("fast predict");
            let (rm, rv) = slow.predict(x);
            assert_close(&format!("gp mean q{q}"), case, &input, fm, rm);
            assert_close(&format!("gp var q{q}"), case, &input, fv, rv);
        }
    }
}

/// A random symmetric positive-definite matrix `GᵀG + cI`, with the
/// diagonal boost keeping every leading principal submatrix comfortably
/// factorable (any principal submatrix of an SPD matrix is SPD).
fn random_spd(rng: &mut rand::rngs::StdRng, p: usize) -> linalg::Matrix {
    use rand::Rng;
    let g = linalg::Matrix::from_fn(p, p, |_, _| rng.gen_range(-1.0..1.0));
    let mut s = g.transpose().matmul(&g).expect("square matmul");
    s.add_diag(0.1 + rng.gen_range(0.0..1.0));
    s
}

fn cached_kernel_driver(cases: u64) {
    use gp::kernel::{SquaredExponential, Task, TransferKernel};
    for case in 0..cases {
        let mut rng = gen::case_rng(testkit::test_seed(), case);
        use rand::Rng;
        let dim = rng.gen_range(1..=3usize);
        let (source, target, config) = gen::gp_problem(&mut rng, dim);
        let cache = gp::cache::FitCache::new(&source, &target, dim)
            .expect("fuzz gp problem passes fit validation");
        let k = cache
            .joint_kernel(&config)
            .expect("fuzz config is in range");
        let base = SquaredExponential::new(config.signal_var, config.lengthscales.clone())
            .expect("fuzz lengthscales are positive");
        let kernel = TransferKernel::with_lambda(base, config.lambda).expect("fuzz lambda");
        let n = source.len();
        let point = |i: usize| -> (&[f64], Task) {
            if i < n {
                (&source.x[i], Task::Source)
            } else {
                (&target.x[i - n], Task::Target)
            }
        };
        for i in 0..n + target.len() {
            for j in 0..n + target.len() {
                let (a, ta) = point(i);
                let (b, tb) = point(j);
                let direct = kernel.eval_task(a, ta, b, tb);
                let input = (&source, &target, &config, i, j);
                assert_close(
                    &format!("cached kernel entry ({i},{j})"),
                    case,
                    &input,
                    k[(i, j)],
                    direct,
                );
            }
        }
        // The search objective built on the cache must agree with the old
        // clone-per-eval path (a fresh model per candidate θ).
        let model = gp::TransferGp::fit(source.clone(), target.clone(), config.clone())
            .expect("fuzz gp problem fits");
        assert_close(
            "cached objective",
            case,
            &(&source, &target, &config),
            cache.objective(&config),
            -model.log_conditional_likelihood(),
        );
    }
}

fn cholesky_extend_driver(cases: u64, max_n: usize) {
    for case in 0..cases {
        let mut rng = gen::case_rng(testkit::test_seed(), case);
        use rand::Rng;
        let p = rng.gen_range(2..=max_n);
        let n = rng.gen_range(1..p);
        let s = random_spd(&mut rng, p);
        let full = linalg::Cholesky::new(&s).expect("SPD full factorization");
        let mut extended =
            linalg::Cholesky::new(&s.submatrix(0, n, 0, n)).expect("SPD prefix factorization");
        extended
            .extend(&s.submatrix(0, n, n, p), &s.submatrix(n, p, n, p))
            .expect("rank-k append of an SPD extension");
        assert_eq!(extended.dim(), p, "extend case {case}: wrong dimension");
        for i in 0..p {
            for j in 0..=i {
                assert_close(
                    &format!("extended cholesky factor ({i},{j})"),
                    case,
                    &(&s, n),
                    extended.factor()[(i, j)],
                    full.factor()[(i, j)],
                );
            }
        }
        assert_close(
            "extended cholesky log_det",
            case,
            &(&s, n),
            extended.log_det(),
            full.log_det(),
        );
    }
}

fn multi_rhs_driver(cases: u64, max_n: usize) {
    for case in 0..cases {
        let mut rng = gen::case_rng(testkit::test_seed(), case);
        use rand::Rng;
        let n = rng.gen_range(1..=max_n);
        let m = rng.gen_range(1..=6usize);
        let s = random_spd(&mut rng, n);
        let chol = linalg::Cholesky::new(&s).expect("SPD factorization");
        let b = linalg::Matrix::from_fn(n, m, |_, _| rng.gen_range(-2.0..2.0));
        let multi = chol
            .solve_lower_only_multi(&b)
            .expect("multi-RHS lower solve");
        // The batched path promises *bitwise* per-column equivalence (the
        // thread-determinism guarantee of batched prediction rests on it),
        // so the comparison here is exact, not DIFF_TOL.
        for j in 0..m {
            let col = chol
                .solve_lower_only(&b.col(j))
                .expect("per-vector lower solve");
            for i in 0..n {
                assert!(
                    multi[(i, j)].to_bits() == col[i].to_bits(),
                    "multi-RHS solve case {case}, entry ({i},{j}): \
                     batched {} vs per-vector {}",
                    multi[(i, j)],
                    col[i]
                );
            }
        }
        // Same contract for the free-function triangular solve.
        let l = chol.factor();
        let free_multi = linalg::solve::solve_lower_multi(l, &b).expect("free multi solve");
        for j in 0..m {
            let col = linalg::solve::solve_lower(l, &b.col(j)).expect("free per-vector solve");
            for i in 0..n {
                assert!(
                    free_multi[(i, j)].to_bits() == col[i].to_bits(),
                    "solve_lower_multi case {case}, entry ({i},{j}): \
                     batched {} vs per-vector {}",
                    free_multi[(i, j)],
                    col[i]
                );
            }
        }
    }
}

#[test]
fn dominance_and_fronts_match_reference() {
    dominance_driver(CASES, 10);
}

#[test]
fn hypervolume_matches_inclusion_exclusion() {
    hypervolume_driver(CASES, 12);
}

#[test]
fn adrs_and_epsilon_match_brute_force() {
    adrs_driver(CASES);
}

#[test]
fn gp_posterior_matches_dense_inverse() {
    gp_posterior_driver(1000, 3);
}

#[test]
fn cached_kernel_assembly_matches_direct_evaluation() {
    cached_kernel_driver(1000);
}

#[test]
fn cholesky_extend_matches_full_refactorization() {
    cholesky_extend_driver(CASES, 10);
}

#[test]
fn multi_rhs_solve_matches_per_vector_solve() {
    multi_rhs_driver(CASES, 12);
}

#[test]
fn transfer_lambda_closed_form_matches_quadrature() {
    // Fuzzed (a, b) over the range the tuner's hyper-prior uses; the
    // quadrature reference is good to ~1e-8, so the tolerance is looser
    // than DIFF_TOL.
    for case in 0..CASES {
        let mut rng = gen::case_rng(testkit::test_seed(), case);
        use rand::Rng;
        let a = rng.gen_range(0.05..5.0);
        let b = rng.gen_range(0.2..5.0);
        let fast = gp::kernel::TransferKernel::from_gamma_prior(
            gp::kernel::SquaredExponential::isotropic(1, 1.0, 1.0).expect("base kernel"),
            a,
            b,
        )
        .expect("transfer kernel")
        .lambda();
        let closed = reference::lambda_closed_form(a, b);
        assert_close("lambda closed form", case, &(a, b), fast, closed);
        // The quadrature oracle costs 400k integrand evaluations, so it
        // spot-checks a deterministic 1-in-50 subsample of the cases.
        if case % 50 == 0 {
            let quad = reference::lambda_by_quadrature(a, b);
            testkit::diff::assert_close_tol("lambda quadrature", case, &(a, b), fast, quad, 1e-6);
        }
    }
    const { assert!(DIFF_TOL <= 1e-9, "acceptance tolerance must stay at 1e-9") };
}

// --- deep stress variants (nightly-style: `cargo test -- --include-ignored`)

#[test]
#[ignore = "10x-depth stress suite, run via --include-ignored"]
fn deep_dominance_and_fronts() {
    dominance_driver(6_000, 14);
}

#[test]
#[ignore = "10x-depth stress suite, run via --include-ignored"]
fn deep_hypervolume() {
    // The 2^n inclusion–exclusion oracle caps how far the point count can
    // stretch; depth comes from the case count instead.
    hypervolume_driver(5_000, 14);
}

#[test]
#[ignore = "10x-depth stress suite, run via --include-ignored"]
fn deep_adrs_and_epsilon() {
    adrs_driver(12_000);
}

#[test]
#[ignore = "10x-depth stress suite, run via --include-ignored"]
fn deep_gp_posterior() {
    gp_posterior_driver(3_000, 5);
}

#[test]
#[ignore = "10x-depth stress suite, run via --include-ignored"]
fn deep_cached_kernel_assembly() {
    cached_kernel_driver(5_000);
}

#[test]
#[ignore = "10x-depth stress suite, run via --include-ignored"]
fn deep_cholesky_extend() {
    cholesky_extend_driver(6_000, 16);
}

#[test]
#[ignore = "10x-depth stress suite, run via --include-ignored"]
fn deep_multi_rhs_solve() {
    multi_rhs_driver(8_000, 20);
}

//! Chaos suite: the tuner loop under deterministic fault injection.
//!
//! Each case derives a fault plan (crash/timeout/NaN/outlier mix, plus a
//! few always-failing candidates) from the shared test seed and runs the
//! full loop against a [`testkit::chaos::FaultyVecOracle`]. The recorded
//! trace is then fed through the invariant checker, which now also
//! enforces the failure-handling laws: quarantine is terminal, failed
//! attempts are conserved in `RunEnd` accounting, and accepted QoR is
//! always finite. On top of the checker, the suite asserts the outcomes
//! that matter to a user: the loop always terminates, quarantined
//! candidates never reach the final front, and when every fault is
//! transient the chaos run lands on exactly the clean run's front.

use gp::optimize::FitBudget;
use obs::RecordingSink;
use pdsim::FaultPlan;
use ppatuner::{PpaTuner, PpaTunerConfig, SourceData, TunerError, VecOracle};
use rand::Rng;
use testkit::chaos::FaultyVecOracle;
use testkit::{gen, invariants, test_seed};

const CASES: u64 = 10;

fn toy_problem(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, SourceData) {
    let candidates: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
    let truth: Vec<Vec<f64>> = candidates
        .iter()
        .map(|p| {
            let x = p[0];
            let bump = if (0.4..0.6).contains(&x) { 0.3 } else { 0.0 };
            vec![x + bump + 0.05, (1.0 - x).powi(2) + bump + 0.05]
        })
        .collect();
    let source = SourceData::new(
        candidates.clone(),
        truth
            .iter()
            .map(|y| y.iter().map(|v| v * 1.1 + 0.02).collect())
            .collect(),
    )
    .expect("toy source data is finite");
    (candidates, truth, source)
}

fn chaos_config(seed: u64) -> PpaTunerConfig {
    PpaTunerConfig {
        initial_samples: 8,
        max_iterations: 12,
        refit_every: 10,
        fit_budget: FitBudget {
            restarts: 1,
            evals_per_restart: 40,
        },
        threads: 1,
        seed,
        ..Default::default()
    }
}

/// Random-plan sweep: whatever the injected failure mix, the loop
/// terminates, the trace obeys every law, and no quarantined candidate
/// leaks into the front.
#[test]
fn random_fault_plans_never_break_the_laws() {
    for case in 0..CASES {
        let mut rng = gen::case_rng(test_seed(), case);
        let (candidates, truth, source) = toy_problem(40);
        let plan = FaultPlan {
            seed: rng.gen(),
            crash_prob: rng.gen_range(0.0..0.2),
            timeout_prob: rng.gen_range(0.0..0.15),
            nan_prob: rng.gen_range(0.0..0.1),
            outlier_prob: rng.gen_range(0.0..0.1),
            outlier_factor: 1e3,
            flaky_max_failures: rng.gen_range(0..4usize),
            always_fail: if rng.gen_bool(0.5) {
                vec![rng.gen_range(0..40), rng.gen_range(0..40)]
            } else {
                Vec::new()
            },
        };
        let mut oracle = FaultyVecOracle::new(truth.clone(), plan.clone());
        let sink = RecordingSink::new();
        let result = PpaTuner::new(chaos_config(rng.gen())).run_observed(
            &source,
            &candidates,
            &mut oracle,
            &sink,
        );
        let result = match result {
            Ok(r) => r,
            // Extreme plans can starve initialization below the two
            // successes a GP needs; rejecting that cleanly is correct.
            Err(TunerError::InvalidInput { .. }) => continue,
            Err(e) => panic!("case {case}: tuner failed on {plan:?}: {e}"),
        };
        let events = sink.events();
        let report = invariants::check_trace(&events, Some(&truth))
            .unwrap_or_else(|e| panic!("case {case}: invariant violated under {plan:?}: {e}"));
        assert_eq!(report.quarantines, result.quarantined.len(), "case {case}");
        assert_eq!(report.eval_failures, result.eval_failures, "case {case}");
        for q in &result.quarantined {
            assert!(
                !result.pareto_indices.contains(q),
                "case {case}: quarantined candidate {q} reached the front"
            );
            assert!(
                result.evaluated.iter().all(|(i, _)| i != q),
                "case {case}: quarantined candidate {q} has an accepted evaluation"
            );
        }
        assert!(result.iterations <= 12, "case {case}: loop overran its cap");
    }
}

/// Transient-only faults (bounded flakiness, nothing always-failing) must
/// cost retries and nothing else: same front, same evaluated set as the
/// fault-free run.
#[test]
fn transient_faults_only_cost_retries() {
    let (candidates, truth, source) = toy_problem(40);
    let mut clean_oracle = VecOracle::new(truth.clone());
    let clean = PpaTuner::new(chaos_config(3))
        .run(&source, &candidates, &mut clean_oracle)
        .expect("clean run succeeds");

    let plan = FaultPlan {
        seed: 17,
        crash_prob: 0.25,
        timeout_prob: 0.15,
        flaky_max_failures: 2,
        ..FaultPlan::default()
    };
    // max_eval_attempts must exceed the flaky bound for recovery to be
    // guaranteed within one selection.
    let config = PpaTunerConfig {
        max_eval_attempts: 4,
        ..chaos_config(3)
    };
    let mut oracle = FaultyVecOracle::new(truth.clone(), plan);
    let chaotic = PpaTuner::new(config)
        .run(&source, &candidates, &mut oracle)
        .expect("bounded flakiness always recovers");

    assert_eq!(chaotic.pareto_indices, clean.pareto_indices);
    assert_eq!(chaotic.evaluated, clean.evaluated);
    assert!(chaotic.quarantined.is_empty());
    assert!(chaotic.eval_failures > 0, "the plan should have injected");
    assert_eq!(
        chaotic.runs + chaotic.verification_runs,
        clean.runs + clean.verification_runs + chaotic.eval_failures
    );
}

/// Hard failures force quarantine but never panic, and classification
/// still completes for the healthy candidates.
#[test]
fn always_failing_candidates_are_contained() {
    let (candidates, truth, source) = toy_problem(40);
    let plan = FaultPlan {
        always_fail: vec![5, 20, 35],
        ..FaultPlan::default()
    };
    let mut oracle = FaultyVecOracle::new(truth.clone(), plan);
    let sink = RecordingSink::new();
    let result = PpaTuner::new(chaos_config(5))
        .run_observed(&source, &candidates, &mut oracle, &sink)
        .expect("hard failures must not abort the run");
    invariants::check_trace(&sink.events(), Some(&truth)).expect("trace is lawful");
    for q in [5usize, 20, 35] {
        if result.quarantined.contains(&q) {
            assert!(!result.pareto_indices.contains(&q));
        }
    }
    assert!(
        !result.pareto_indices.is_empty(),
        "healthy candidates still classify"
    );
}

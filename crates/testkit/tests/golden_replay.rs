//! Golden-trace replay: the deterministic reference scenario must emit a
//! byte-identical canonical event stream, and that stream must satisfy
//! every algorithmic invariant.
//!
//! Regenerate the committed snapshot after an intentional behavior change
//! with `TESTKIT_BLESS=1 cargo test -p testkit` and commit the diff.

use testkit::invariants::check_trace;
use testkit::trace::{canonical_jsonl, check_or_bless, run_golden, run_golden_with_threads};

#[test]
fn golden_scenario_trace_is_stable() {
    let run = run_golden();
    check_or_bless("scenario_two_seeded.jsonl", &canonical_jsonl(&run.events));
}

#[test]
fn golden_scenario_trace_satisfies_invariants() {
    let run = run_golden();
    let report = check_trace(&run.events, Some(&run.table)).expect("invariants hold");
    // The run must actually exercise the laws, not vacuously pass.
    assert!(report.snapshots >= 2, "too few snapshots: {report:?}");
    assert!(report.selects >= 1, "no selection checked: {report:?}");
    assert!(report.tool_evals >= 10, "too few evaluations: {report:?}");
    assert!(
        report.pareto_checked >= 1,
        "no Pareto classification checked: {report:?}"
    );
    // The causal span tree must be present and closed: at least the run
    // span, one iteration span with its gp_fit/classify children, and one
    // eval_attempt per tool run.
    assert!(report.spans >= 4, "too few spans checked: {report:?}");
    assert!(
        report.spans > report.tool_evals,
        "spans must cover more than eval attempts: {report:?}"
    );
    // The trace's final accounting matches the result the caller gets.
    assert_eq!(
        report.tool_evals,
        run.result.runs + run.result.verification_runs
    );
}

#[test]
fn golden_run_is_reproducible_within_process() {
    // Two runs in the same process must produce identical canonical
    // traces; this is the precondition for the cross-run golden diff.
    let a = canonical_jsonl(&run_golden().events);
    let b = canonical_jsonl(&run_golden().events);
    assert_eq!(a, b, "golden scenario is not deterministic");
}

#[test]
fn golden_trace_is_thread_count_invariant() {
    // Restart starts are pre-drawn from the sequential RNG stream and
    // batched prediction is chunk-invariant, so the parallel fitting and
    // prediction paths must replay the golden scenario event-for-event.
    let single = canonical_jsonl(&run_golden_with_threads(1).events);
    let multi = canonical_jsonl(&run_golden_with_threads(4).events);
    assert_eq!(
        single, multi,
        "thread count changed the golden scenario's trace"
    );
}

#[test]
fn committed_golden_trace_parses_and_satisfies_invariants() {
    // The snapshot on disk — not just the freshly recorded stream — must
    // parse back into events and pass the checker, so the committed
    // artifact itself is verified (canonicalization must not break the
    // trace's semantics).
    let path = testkit::trace::golden_dir().join("scenario_two_seeded.jsonl");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden file {} unreadable ({e}); bless with TESTKIT_BLESS=1",
            path.display()
        )
    });
    let events: Vec<obs::Event> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("golden line parses as Event"))
        .collect();
    assert!(!events.is_empty());
    let report = check_trace(&events, None).expect("committed trace invariants");
    assert!(report.snapshots >= 2);
}

//! Golden-trace replay: the deterministic reference scenario must emit a
//! byte-identical canonical event stream, and that stream must satisfy
//! every algorithmic invariant.
//!
//! Regenerate the committed snapshot after an intentional behavior change
//! with `TESTKIT_BLESS=1 cargo test -p testkit` and commit the diff.

use testkit::invariants::check_trace;
use testkit::trace::{
    canonical_jsonl, check_or_bless, run_golden, run_golden_batch, run_golden_pool,
    run_golden_with_threads,
};

#[test]
fn golden_scenario_trace_is_stable() {
    let run = run_golden();
    check_or_bless("scenario_two_seeded.jsonl", &canonical_jsonl(&run.events));
}

#[test]
fn golden_scenario_trace_satisfies_invariants() {
    let run = run_golden();
    let report = check_trace(&run.events, Some(&run.table)).expect("invariants hold");
    // The run must actually exercise the laws, not vacuously pass.
    assert!(report.snapshots >= 2, "too few snapshots: {report:?}");
    assert!(report.selects >= 1, "no selection checked: {report:?}");
    assert!(report.tool_evals >= 10, "too few evaluations: {report:?}");
    assert!(
        report.pareto_checked >= 1,
        "no Pareto classification checked: {report:?}"
    );
    // The causal span tree must be present and closed: at least the run
    // span, one iteration span with its gp_fit/classify children, and one
    // eval_attempt per tool run.
    assert!(report.spans >= 4, "too few spans checked: {report:?}");
    assert!(
        report.spans > report.tool_evals,
        "spans must cover more than eval attempts: {report:?}"
    );
    // The trace's final accounting matches the result the caller gets.
    assert_eq!(
        report.tool_evals,
        run.result.runs + run.result.verification_runs
    );
}

#[test]
fn golden_run_is_reproducible_within_process() {
    // Two runs in the same process must produce identical canonical
    // traces; this is the precondition for the cross-run golden diff.
    let a = canonical_jsonl(&run_golden().events);
    let b = canonical_jsonl(&run_golden().events);
    assert_eq!(a, b, "golden scenario is not deterministic");
}

#[test]
fn golden_trace_is_thread_count_invariant() {
    // Restart starts are pre-drawn from the sequential RNG stream and
    // batched prediction is chunk-invariant, so the parallel fitting and
    // prediction paths must replay the golden scenario event-for-event.
    let single = canonical_jsonl(&run_golden_with_threads(1).events);
    let multi = canonical_jsonl(&run_golden_with_threads(4).events);
    assert_eq!(
        single, multi,
        "thread count changed the golden scenario's trace"
    );
}

#[test]
fn batch_q1_trace_is_byte_identical_to_the_serial_golden() {
    // The q = 1 concurrent path must reproduce the committed serial
    // golden *exactly*: no batch_eval spans, legacy Select events, same
    // bytes. Compared directly against the in-memory serial run (not via
    // check_or_bless), so a bless can never paper over a divergence.
    let serial = canonical_jsonl(&run_golden().events);
    let batch = canonical_jsonl(&run_golden_batch(1, 4).events);
    assert_eq!(
        serial, batch,
        "q = 1 through the concurrent wave machinery drifted from the serial trace"
    );
}

#[test]
fn golden_batch_q2_trace_is_stable() {
    let run = run_golden_batch(2, 2);
    check_or_bless(
        "scenario_two_seeded_q2.jsonl",
        &canonical_jsonl(&run.events),
    );
}

#[test]
fn golden_batch_q4_trace_is_stable() {
    let run = run_golden_batch(4, 4);
    check_or_bless(
        "scenario_two_seeded_q4.jsonl",
        &canonical_jsonl(&run.events),
    );
}

#[test]
fn golden_batch_q4_trace_satisfies_invariants() {
    let run = run_golden_batch(4, 4);
    let report = check_trace(&run.events, Some(&run.table)).expect("batch invariants hold");
    assert!(report.batch_selects >= 1, "no batch checked: {report:?}");
    assert_eq!(
        report.selects, 0,
        "q > 1 must not emit legacy Select events"
    );
    assert!(report.tool_evals >= 10, "too few evaluations: {report:?}");
    assert!(
        report.spans > report.tool_evals,
        "missing spans: {report:?}"
    );
    assert_eq!(
        report.tool_evals,
        run.result.runs + run.result.verification_runs
    );
    // The recorded stream must name batch_eval spans (the concurrency
    // fan-out is visible in the causal tree, not inferred).
    let batch_spans = run
        .events
        .iter()
        .filter(|e| matches!(e, obs::Event::SpanStart { name, .. } if name == "batch_eval"))
        .count();
    assert!(batch_spans >= 1, "no batch_eval span recorded");
}

#[test]
fn golden_batch_trace_is_worker_count_invariant() {
    // Wave merges happen in deterministic batch order, so the recorded
    // trace — span IDs included — must not depend on how many worker
    // threads raced through the oracle.
    let w1 = run_golden_batch(4, 1);
    let w2 = run_golden_batch(4, 2);
    let w8 = run_golden_batch(4, 8);
    let t1 = canonical_jsonl(&w1.events);
    assert_eq!(t1, canonical_jsonl(&w2.events), "1 vs 2 workers diverged");
    assert_eq!(t1, canonical_jsonl(&w8.events), "1 vs 8 workers diverged");
    // Structural result fields agree too (durations legitimately differ).
    assert_eq!(w1.result.pareto_indices, w8.result.pareto_indices);
    assert_eq!(w1.result.evaluated, w8.result.evaluated);
    assert_eq!(w1.result.runs, w8.result.runs);
    assert_eq!(w1.result.verification_runs, w8.result.verification_runs);
    assert_eq!(w1.result.iterations, w8.result.iterations);
}

#[test]
fn golden_pool_trace_is_stable() {
    // Pins the adaptive-pool refinement sequence (which leaf splits at
    // which iteration) and the subset-of-data predict-path switchovers.
    let run = run_golden_pool();
    check_or_bless(
        "scenario_two_seeded_pool.jsonl",
        &canonical_jsonl(&run.events),
    );
}

#[test]
fn golden_pool_trace_satisfies_invariants() {
    let run = run_golden_pool();
    let report = check_trace(&run.events, Some(&run.table)).expect("pool invariants hold");
    // The pool must actually refine, and every refinement obeys the
    // append-only growth law.
    assert!(report.pool_refines >= 2, "pool never refined: {report:?}");
    assert!(report.snapshots >= 2, "too few snapshots: {report:?}");
    assert!(report.tool_evals >= 10, "too few evaluations: {report:?}");
    assert_eq!(
        report.tool_evals,
        run.result.runs + run.result.verification_runs
    );
    // The pool actually grew: a PoolRefine with nonzero splits exists.
    let grew = run
        .events
        .iter()
        .any(|e| matches!(e, obs::Event::PoolRefine { splits, .. } if *splits > 0));
    assert!(grew, "trace shows no pool growth");
    // The subset-of-data path activated at least once.
    let subset = run
        .events
        .iter()
        .any(|e| matches!(e, obs::Event::PredictMode { mode, .. } if mode == "subset"));
    assert!(subset, "subset predict path never activated");
}

#[test]
fn golden_pool_run_is_reproducible_within_process() {
    let a = canonical_jsonl(&run_golden_pool().events);
    let b = canonical_jsonl(&run_golden_pool().events);
    assert_eq!(a, b, "pool golden scenario is not deterministic");
}

#[test]
fn committed_golden_trace_parses_and_satisfies_invariants() {
    // The snapshot on disk — not just the freshly recorded stream — must
    // parse back into events and pass the checker, so the committed
    // artifact itself is verified (canonicalization must not break the
    // trace's semantics).
    let path = testkit::trace::golden_dir().join("scenario_two_seeded.jsonl");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden file {} unreadable ({e}); bless with TESTKIT_BLESS=1",
            path.display()
        )
    });
    let events: Vec<obs::Event> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("golden line parses as Event"))
        .collect();
    assert!(!events.is_empty());
    let report = check_trace(&events, None).expect("committed trace invariants");
    assert!(report.snapshots >= 2);
}

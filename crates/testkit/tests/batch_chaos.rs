//! Chaos suite for q-batch concurrent evaluation: deterministic fault
//! injection fanned out across a wave must stay exactly as lawful — and
//! exactly as reproducible — as the serial path.
//!
//! Three claims are pinned here, on top of the serial chaos suite:
//!
//! 1. **Worker-count invariance under faults**: a faulty q = 4 run
//!    records the same canonical trace at 1, 2, and 8 workers. Retries,
//!    backoff bookkeeping, and quarantines happen per member inside the
//!    wave, and merges are in batch order, so thread scheduling can
//!    never leak into the trace.
//! 2. **Fault containment**: an always-failing batch member is
//!    quarantined without corrupting or starving its siblings — every
//!    accepted evaluation still carries the exact golden QoR, and the
//!    invariant checker's RunEnd attempt-conservation law holds.
//! 3. **Serial/concurrent equivalence**: the same faulty scenario run
//!    through `run_observed` (serial oracle) and `run_concurrent`
//!    (shared oracle, many workers) produces identical canonical traces
//!    at the same `batch_size`.

use gp::optimize::FitBudget;
use obs::RecordingSink;
use pdsim::FaultPlan;
use ppatuner::{PpaTuner, PpaTunerConfig, SharedOracle, SourceData, TuneResult, TunerError};
use rand::Rng;
use testkit::chaos::FaultyVecOracle;
use testkit::trace::canonical_jsonl;
use testkit::{gen, invariants, test_seed};

const CASES: u64 = 6;

fn toy_problem(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, SourceData) {
    let candidates: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
    let truth: Vec<Vec<f64>> = candidates
        .iter()
        .map(|p| {
            let x = p[0];
            let bump = if (0.4..0.6).contains(&x) { 0.3 } else { 0.0 };
            vec![x + bump + 0.05, (1.0 - x).powi(2) + bump + 0.05]
        })
        .collect();
    let source = SourceData::new(
        candidates.clone(),
        truth
            .iter()
            .map(|y| y.iter().map(|v| v * 1.1 + 0.02).collect())
            .collect(),
    )
    .expect("toy source data is finite");
    (candidates, truth, source)
}

fn batch_config(seed: u64, q: usize, workers: usize) -> PpaTunerConfig {
    PpaTunerConfig {
        initial_samples: 8,
        max_iterations: 12,
        refit_every: 10,
        fit_budget: FitBudget {
            restarts: 1,
            evals_per_restart: 40,
        },
        threads: 1,
        seed,
        batch_size: q,
        eval_workers: workers,
        max_eval_attempts: 4,
        ..Default::default()
    }
}

/// Runs one faulty concurrent case and returns (canonical trace, result).
fn run_faulty_concurrent(
    plan: &FaultPlan,
    seed: u64,
    q: usize,
    workers: usize,
) -> Result<(String, TuneResult, Vec<Vec<f64>>), TunerError> {
    let (candidates, truth, source) = toy_problem(40);
    let oracle = SharedOracle::new(FaultyVecOracle::new(truth.clone(), plan.clone()));
    let sink = RecordingSink::new();
    let result = PpaTuner::new(batch_config(seed, q, workers)).run_concurrent(
        &source,
        &candidates,
        &oracle,
        &sink,
    )?;
    Ok((canonical_jsonl(&sink.events()), result, truth))
}

/// Random-plan sweep at q = 4: whatever the injected mix, every worker
/// count records the same lawful canonical trace and the same result.
#[test]
fn faulty_batch_runs_are_worker_count_invariant() {
    for case in 0..CASES {
        let mut rng = gen::case_rng(test_seed() ^ 0xba7c_4a0b, case);
        let plan = FaultPlan {
            seed: rng.gen(),
            crash_prob: rng.gen_range(0.0..0.2),
            timeout_prob: rng.gen_range(0.0..0.15),
            nan_prob: rng.gen_range(0.0..0.1),
            outlier_prob: rng.gen_range(0.0..0.1),
            outlier_factor: 1e3,
            flaky_max_failures: rng.gen_range(0..3usize),
            always_fail: if rng.gen_bool(0.5) {
                vec![rng.gen_range(0..40), rng.gen_range(0..40)]
            } else {
                Vec::new()
            },
        };
        let seed = rng.gen();
        let base = match run_faulty_concurrent(&plan, seed, 4, 1) {
            Ok(out) => out,
            // Extreme plans can starve initialization below the two
            // successes a GP needs; rejecting that cleanly is correct.
            Err(TunerError::InvalidInput { .. }) => continue,
            Err(e) => panic!("case {case}: tuner failed on {plan:?}: {e}"),
        };
        let (trace1, result1, truth) = base;
        for workers in [2usize, 8] {
            let (trace_w, result_w, _) = run_faulty_concurrent(&plan, seed, 4, workers)
                .unwrap_or_else(|e| panic!("case {case}: {workers} workers failed: {e}"));
            assert_eq!(
                trace1, trace_w,
                "case {case}: trace diverged at {workers} workers under {plan:?}"
            );
            assert_eq!(
                result1.pareto_indices, result_w.pareto_indices,
                "case {case}"
            );
            assert_eq!(result1.evaluated, result_w.evaluated, "case {case}");
            assert_eq!(result1.quarantined, result_w.quarantined, "case {case}");
            assert_eq!(result1.eval_failures, result_w.eval_failures, "case {case}");
            assert_eq!(result1.runs, result_w.runs, "case {case}");
        }
        // The invariant checker (batch laws included) accepts the trace.
        let events: Vec<obs::Event> = trace1
            .lines()
            .map(|l| serde_json::from_str(l).expect("canonical line parses"))
            .collect();
        let report = invariants::check_trace(&events, Some(&truth))
            .unwrap_or_else(|e| panic!("case {case}: invariant violated under {plan:?}: {e}"));
        assert_eq!(report.quarantines, result1.quarantined.len(), "case {case}");
        assert_eq!(report.eval_failures, result1.eval_failures, "case {case}");
    }
}

/// Always-failing members are quarantined inside their wave without
/// corrupting or starving siblings: every accepted evaluation carries
/// the exact golden QoR, healthy candidates still classify, and the
/// trace's RunEnd accounting conserves attempts.
#[test]
fn batch_faults_never_corrupt_or_starve_siblings() {
    let plan = FaultPlan {
        always_fail: vec![5, 20, 35],
        ..FaultPlan::default()
    };
    let (candidates, truth, source) = toy_problem(40);
    let oracle = SharedOracle::new(FaultyVecOracle::new(truth.clone(), plan));
    let sink = RecordingSink::new();
    // Small init set and wide τ keep candidates undecided past
    // initialization, so the selection loop genuinely runs batches.
    let config = PpaTunerConfig {
        initial_samples: 4,
        tau: 3.0,
        ..batch_config(11, 4, 8)
    };
    let result = PpaTuner::new(config)
        .run_concurrent(&source, &candidates, &oracle, &sink)
        .expect("hard failures must not abort the run");
    let trace = canonical_jsonl(&sink.events());
    let events: Vec<obs::Event> = trace
        .lines()
        .map(|l| serde_json::from_str(l).expect("canonical line parses"))
        .collect();
    let report = invariants::check_trace(&events, Some(&truth)).expect("trace is lawful");
    assert!(report.batch_selects >= 1, "no batch exercised: {report:?}");
    // Siblings of failing members got clean, uncorrupted QoR.
    for (i, y) in &result.evaluated {
        assert_eq!(
            y, &truth[*i],
            "candidate {i} QoR corrupted by a sibling fault"
        );
    }
    for q in [5usize, 20, 35] {
        if result.quarantined.contains(&q) {
            assert!(!result.pareto_indices.contains(&q));
            assert!(result.evaluated.iter().all(|(i, _)| *i != q));
        }
    }
    assert!(
        !result.pareto_indices.is_empty(),
        "healthy candidates still classify"
    );
    assert!(
        result.evaluated.len() >= 8,
        "siblings were starved: only {} evaluations accepted",
        result.evaluated.len()
    );
}

/// The serial entry point and the concurrent one agree event-for-event
/// on the same faulty scenario at the same batch size.
#[test]
fn serial_and_concurrent_chaos_traces_are_identical() {
    let plan = FaultPlan {
        seed: 23,
        crash_prob: 0.2,
        timeout_prob: 0.1,
        flaky_max_failures: 2,
        always_fail: vec![13],
        ..FaultPlan::default()
    };
    let (candidates, truth, source) = toy_problem(40);
    let mut serial_oracle = FaultyVecOracle::new(truth.clone(), plan.clone());
    let serial_sink = RecordingSink::new();
    let serial = PpaTuner::new(batch_config(7, 4, 1))
        .run_observed(&source, &candidates, &mut serial_oracle, &serial_sink)
        .expect("serial chaos run succeeds");
    let (concurrent_trace, concurrent, _) =
        run_faulty_concurrent(&plan, 7, 4, 8).expect("concurrent chaos run succeeds");
    assert_eq!(
        canonical_jsonl(&serial_sink.events()),
        concurrent_trace,
        "serial and concurrent paths recorded different traces"
    );
    assert_eq!(serial.pareto_indices, concurrent.pareto_indices);
    assert_eq!(serial.evaluated, concurrent.evaluated);
    assert_eq!(serial.quarantined, concurrent.quarantined);
}

//! Differential suite for the predict-sweep fast paths: the cached
//! incremental predict ([`gp::TransferGp::predict_latent_batch_cached`])
//! and the data-parallel batch predict
//! ([`gp::TransferGp::predict_latent_batch_par`]) against testkit's
//! dense reference posterior and against each other.
//!
//! Two layers of guarantees are pinned:
//!
//! - **Correctness (1e-9 vs the dense reference)**: the cached sweep —
//!   before *and after* incremental conditioning, i.e. through the
//!   `Cholesky::extend` + `solve_lower_only_tail` path — agrees with a
//!   from-scratch dense-inverse posterior of the same (conditioned)
//!   training set within [`testkit::diff::DIFF_TOL`].
//! - **Bitwise equivalence**: the cached sweep and the parallel sweep
//!   return exactly the bits of the serial from-scratch
//!   `predict_latent_batch_with_block` — at every worker count and every
//!   block size, including `block = 1`, blocks that do not divide the
//!   query count, and `block > pool`. The tuner's determinism contract
//!   (traces independent of `predict_workers` and cache warmth) rests on
//!   this.
//!
//! Each case re-seeds its own generator from the shared
//! [`testkit::test_seed`] and the case index, so a failure message alone
//! reproduces the input. The `#[ignore]`d deep suites re-run the drivers
//! with 10× the cases; CI runs them in the `--include-ignored` step.

use gp::{PredictCache, TaskData};
use testkit::diff::{assert_close, assert_close_tol};
use testkit::{gen, refgp};

const CASES: u64 = 1000;

/// Tolerance for the post-conditioning dense comparison. The fast path
/// *extends* its Cholesky factor in place while the reference inverts a
/// freshly assembled matrix, so the two accumulate rounding differently;
/// the worst drift observed across the seeded case set is ≈1.1e-9,
/// pinned with small headroom. The cold comparison (same factorization
/// order on both sides) stays at the suite-wide 1e-9, and the cached
/// path is *bitwise* identical to from-scratch either way.
const EXTEND_TOL: f64 = 5e-9;

/// Asserts two batch-prediction outputs are bit-for-bit identical.
fn assert_bitwise(what: &str, case: u64, a: &[(f64, f64)], b: &[(f64, f64)]) {
    assert_eq!(a.len(), b.len(), "{what} case {case}: length mismatch");
    for (q, ((am, av), (bm, bv))) in a.iter().zip(b).enumerate() {
        assert!(
            am.to_bits() == bm.to_bits() && av.to_bits() == bv.to_bits(),
            "{what} case {case} q{q}: ({am}, {av}) vs ({bm}, {bv})"
        );
    }
}

/// Cached-incremental predict vs the dense reference and vs the serial
/// from-scratch batch, across a fit → sweep → condition → sweep cycle.
fn cached_predict_driver(cases: u64, queries_per_case: usize) {
    for case in 0..cases {
        let mut rng = gen::case_rng(testkit::test_seed(), case);
        use rand::Rng;
        let dim = rng.gen_range(1..=3usize);
        let (source, target, config) = gen::gp_problem(&mut rng, dim);
        let mut fast = gp::TransferGp::fit(source.clone(), target.clone(), config.clone())
            .expect("fast transfer GP fits well-conditioned fuzz input");
        let queries = gen::gp_queries(&mut rng, &target, dim, queries_per_case);
        let ids: Vec<u64> = (0..queries.len() as u64).collect();
        let block = rng.gen_range(1..=queries.len() + 2);
        let workers = rng.gen_range(1..=4usize);

        let mut cache = PredictCache::new();
        cache.begin_sweep();
        let cold = fast
            .predict_latent_batch_cached(&ids, &queries, block, workers, &mut cache)
            .expect("cold cached sweep");
        let scratch = fast
            .predict_latent_batch_with_block(&queries, block)
            .expect("serial from-scratch batch");
        assert_bitwise("cold cached sweep", case, &cold, &scratch);
        assert_eq!(
            cache.len(),
            queries.len(),
            "case {case}: cold sweep must cache every candidate"
        );

        // The dense reference inverts the same matrix the fast path
        // factored, so it takes the jitter the Cholesky actually added.
        let dense = refgp::ReferenceTransferGp::fit(&source, &target, &config, fast.jitter());
        for (q, x) in queries.iter().enumerate() {
            let (rm, rv) = dense.predict_latent(x);
            let input = (&source, &target, &config, x);
            assert_close(
                &format!("cached latent mean q{q}"),
                case,
                &input,
                cold[q].0,
                rm,
            );
            assert_close(
                &format!("cached latent var q{q}"),
                case,
                &input,
                cold[q].1,
                rv,
            );
        }

        // Incrementally condition on 1–3 fresh observations, then sweep
        // again: every cached candidate takes the extend + tail-solve
        // path, which must stay bitwise identical to from-scratch and
        // 1e-9-close to a dense refit of the extended training set.
        let q_new = rng.gen_range(1..=3usize);
        let new_x: Vec<Vec<f64>> = (0..q_new)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let new_y: Vec<f64> = (0..q_new).map(|_| rng.gen_range(-2.0..2.0)).collect();
        fast.condition_on(&new_x, &new_y)
            .expect("incremental conditioning on fuzz points");

        cache.begin_sweep();
        let warm = fast
            .predict_latent_batch_cached(&ids, &queries, block, workers, &mut cache)
            .expect("warm cached sweep");
        let scratch = fast
            .predict_latent_batch_with_block(&queries, block)
            .expect("serial from-scratch batch after conditioning");
        assert_bitwise("warm cached sweep", case, &warm, &scratch);

        let mut ext_x = target.x.as_ref().clone();
        ext_x.extend(new_x.iter().cloned());
        let mut ext_y = target.y.clone();
        ext_y.extend_from_slice(&new_y);
        let ext_target = TaskData::new(ext_x, ext_y);
        let dense = refgp::ReferenceTransferGp::fit(&source, &ext_target, &config, fast.jitter());
        for (q, x) in queries.iter().enumerate() {
            let (rm, rv) = dense.predict_latent(x);
            let input = (&source, &ext_target, &config, x);
            assert_close_tol(
                &format!("warm latent mean q{q}"),
                case,
                &input,
                warm[q].0,
                rm,
                EXTEND_TOL,
            );
            assert_close_tol(
                &format!("warm latent var q{q}"),
                case,
                &input,
                warm[q].1,
                rv,
                EXTEND_TOL,
            );
        }
    }
}

/// The parallel sweep must return the serial sweep's exact bits at every
/// worker count and block size — including `block = 1`, block sizes that
/// do not divide the pool, and `block > pool` — on both the exact and
/// the subset-of-data surrogate.
fn parallel_invariance_driver(cases: u64, pool: usize) {
    for case in 0..cases {
        let mut rng = gen::case_rng(testkit::test_seed(), case);
        use rand::Rng;
        let dim = rng.gen_range(1..=3usize);
        let (source, target, config) = gen::gp_problem(&mut rng, dim);
        let fast = gp::TransferGp::fit(source.clone(), target.clone(), config.clone())
            .expect("fast transfer GP fits well-conditioned fuzz input");
        let queries = gen::gp_queries(&mut rng, &target, dim, pool);
        let base = fast
            .predict_latent_batch_with_block(&queries, gp::PREDICT_BLOCK)
            .expect("serial reference batch");
        let sod = fast
            .subset_predictor((source.len() + target.len()).div_ceil(2))
            .expect("subset predictor builds on fuzz input");
        let sod_base = sod
            .predict_latent_batch_with_block(&queries, gp::PREDICT_BLOCK)
            .expect("serial subset reference batch");
        // block = 1, a non-divisor of the pool, and block > pool.
        for block in [1, 3, pool - 1, pool + 5] {
            for workers in [1, 2, 4, 8] {
                let par = fast
                    .predict_latent_batch_par(&queries, block, workers)
                    .expect("parallel batch");
                assert_bitwise(
                    &format!("exact par block={block} workers={workers}"),
                    case,
                    &par,
                    &base,
                );
                let par = sod
                    .predict_latent_batch_par(&queries, block, workers)
                    .expect("parallel subset batch");
                assert_bitwise(
                    &format!("sod par block={block} workers={workers}"),
                    case,
                    &par,
                    &sod_base,
                );
            }
        }
    }
}

#[test]
fn cached_incremental_predict_matches_dense_reference() {
    cached_predict_driver(CASES, 4);
}

#[test]
fn parallel_predict_is_chunk_and_worker_invariant() {
    parallel_invariance_driver(60, 17);
}

// --- deep stress variants (nightly-style: `cargo test -- --include-ignored`)

#[test]
#[ignore = "10x-depth stress suite, run via --include-ignored"]
fn deep_cached_incremental_predict() {
    cached_predict_driver(10_000, 5);
}

#[test]
#[ignore = "10x-depth stress suite, run via --include-ignored"]
fn deep_parallel_invariance() {
    parallel_invariance_driver(600, 29);
}

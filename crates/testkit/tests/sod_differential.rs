//! Differential bounds for the subset-of-data predict path: the
//! [`gp::SubsetPredictor`] against testkit's dense reference posterior.
//!
//! The subset posterior is the *exact* GP posterior of a maximin anchor
//! subset, so the laws below are checked against the dense reference
//! (`refgp`) rather than against the fast implementation it approximates.
//! Two of them are theorems; one is an empirical regression pin:
//!
//! - **Variance domination** (theorem): conditioning on fewer points only
//!   loses information, so `σ²_sod(x) ≥ σ²_exact(x)` (up to factorization
//!   jitter). This is what keeps ε-PAL sound on the subset path — its
//!   uncertainty boxes are conservative supersets of the exact ones.
//! - **Nested-anchor monotonicity** (theorem): the maximin anchor
//!   sequence is a greedy prefix order, so a larger subset conditions on
//!   a superset of the smaller one and its latent variance can only
//!   shrink: `σ²_sod(m₂) ≤ σ²_sod(m₁)` for `m₂ ≥ m₁`.
//! - **Mean-error envelope** (empirical pin): for data drawn from the
//!   prior, nested conditioning gives
//!   `E[(μ_exact − μ_sod)²] = σ²_sod − σ²_exact`, which is what the
//!   `c ≈ 3`σ heuristic on [`gp::TransferGp::subset_predictor`] encodes.
//!   The fuzz surfaces here are deliberately *out-of-model* (sinusoids
//!   with a large task offset), where both posteriors can extrapolate
//!   confidently in different directions; the worst observed ratio
//!   across the seeded case set is ≈41σ (dim-1, disjoint source/target
//!   value ranges, queries past the target's training range). The suite
//!   therefore pins `|μ_sod − μ_exact| ≤ 48·σ_sod` as a regression
//!   envelope — a tightened subset path would trip it, and the sound
//!   guarantee ε-PAL actually relies on is the variance law above.
//! - **Degenerate exactness** (theorem): at `m = n` the anchor set is the
//!   whole training set (in a different order), so the subset posterior
//!   must match the dense reference to float-reordering tolerance.

use testkit::diff::assert_close_tol;
use testkit::{gen, refgp};

const CASES: u64 = 400;

/// Empirical mean-error envelope in units of σ_sod (see module docs):
/// the worst ratio observed over the seeded case set is ≈41, pinned with
/// headroom so legitimate float drift does not flake the suite.
const MEAN_ENVELOPE: f64 = 48.0;

/// Tolerance for the `m = n` exactness check: the subset path factors a
/// row-permuted copy of the same matrix, so agreement is to reordering
/// error, not bitwise.
const PERMUTED_TOL: f64 = 1e-6;

/// Slack added to the variance inequalities for the Cholesky jitter both
/// factorizations may inject.
const JITTER_SLACK: f64 = 1e-7;

fn sod_driver(cases: u64, queries_per_case: usize) {
    for case in 0..cases {
        let mut rng = gen::case_rng(testkit::test_seed(), case);
        use rand::Rng;
        let dim = rng.gen_range(1..=3usize);
        let (source, target, config) = gen::gp_problem(&mut rng, dim);
        let fast = gp::TransferGp::fit(source.clone(), target.clone(), config.clone())
            .expect("fast transfer GP fits well-conditioned fuzz input");
        let exact = refgp::ReferenceTransferGp::fit(&source, &target, &config, fast.jitter());
        let p = source.len() + target.len();
        let queries = gen::gp_queries(&mut rng, &target, dim, queries_per_case);

        // Latent variance of the previous (smaller) subset per query, for
        // the nested-anchor monotonicity law.
        let mut prev_var: Vec<Option<f64>> = vec![None; queries.len()];

        for m in [1, p.div_ceil(2), p] {
            let sod = fast
                .subset_predictor(m)
                .expect("subset predictor builds on fuzz input");
            assert_eq!(
                sod.subset_size(),
                m.min(p),
                "case {case}: wrong anchor count"
            );
            assert_eq!(sod.train_size(), p, "case {case}: wrong train size");
            for (q, x) in queries.iter().enumerate() {
                let (sm, sv) = sod.predict_latent(x).expect("sod predict_latent");
                let (rm, rv) = exact.predict_latent(x);
                let input = (&source, &target, &config, m, x);

                // Variance domination (soundness of the ε-PAL boxes).
                assert!(
                    sv >= rv - JITTER_SLACK * rv.abs().max(1.0),
                    "case {case} m={m} q{q}: subset variance {sv} undercuts \
                     exact {rv} for input {input:?}"
                );

                // Nested-anchor monotonicity: more anchors, less variance.
                if let Some(pv) = prev_var[q] {
                    assert!(
                        sv <= pv + JITTER_SLACK * pv.abs().max(1.0),
                        "case {case} m={m} q{q}: variance {sv} grew past the \
                         smaller subset's {pv} for input {input:?}"
                    );
                }
                prev_var[q] = Some(sv);

                // Empirical mean-error envelope (see the module docs).
                let bound = MEAN_ENVELOPE * sv.max(0.0).sqrt() + PERMUTED_TOL;
                assert!(
                    (sm - rm).abs() <= bound,
                    "case {case} m={m} q{q}: |μ_sod − μ_exact| = {} exceeds \
                     the {MEAN_ENVELOPE}σ_sod envelope {bound} for input {input:?}",
                    (sm - rm).abs()
                );

                // Full-subset degenerate case: exact posterior, permuted.
                if m >= p {
                    assert_close_tol(
                        &format!("sod full-subset latent mean q{q}"),
                        case,
                        &input,
                        sm,
                        rm,
                        PERMUTED_TOL,
                    );
                    assert_close_tol(
                        &format!("sod full-subset latent var q{q}"),
                        case,
                        &input,
                        sv,
                        rv,
                        PERMUTED_TOL,
                    );
                    let (som, sov) = sod.predict(x).expect("sod predict");
                    let (rom, rov) = exact.predict(x);
                    assert_close_tol(
                        &format!("sod full-subset obs mean q{q}"),
                        case,
                        &input,
                        som,
                        rom,
                        PERMUTED_TOL,
                    );
                    assert_close_tol(
                        &format!("sod full-subset obs var q{q}"),
                        case,
                        &input,
                        sov,
                        rov,
                        PERMUTED_TOL,
                    );
                }
            }
        }
    }
}

#[test]
fn subset_posterior_is_conservative_and_sigma_bounded() {
    sod_driver(CASES, 4);
}

#[test]
#[ignore = "10x-depth stress suite, run via --include-ignored"]
fn deep_subset_posterior() {
    sod_driver(4_000, 6);
}

//! Differential fuzz: greedy batch selection vs the brute-force subset
//! enumeration reference, bit-for-bit, over ≥1000 seeded cases.
//!
//! Each case draws a random candidate pool (with deliberately tie-heavy
//! quantized variants), random uncertainty boxes (including unbounded
//! and zero-diameter degenerates), random statuses/evaluated flags, and
//! random `(q, γ, radius)`. The fast path must reproduce the reference's
//! index sequence exactly and its diameters/scores to the last bit —
//! the property the golden traces and invariant checker rely on.

use ppatuner::{select_batch, Status, UncertaintyRegion};
use rand::rngs::StdRng;
use rand::Rng;
use testkit::batchsel::reference_select_batch;
use testkit::gen::case_rng;

struct Case {
    candidates: Vec<Vec<f64>>,
    regions: Vec<UncertaintyRegion>,
    statuses: Vec<Status>,
    evaluated: Vec<bool>,
    q: usize,
    diversity: f64,
    radius: f64,
}

/// Draws one random selection problem. Quantized ("tie-heavy") cases
/// snap every coordinate and box corner to a coarse grid so exact score
/// ties — the tie-break order's reason to exist — actually occur.
fn draw_case(rng: &mut StdRng) -> Case {
    let n = rng.gen_range(4..12usize);
    let param_dim = rng.gen_range(1..=3usize);
    let obj_dim = rng.gen_range(1..=3usize);
    let tie_heavy = rng.gen_bool(0.4);
    let snap = |v: f64| (v * 4.0).round() / 4.0;

    let mut candidates: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..param_dim)
                .map(|_| {
                    let v = rng.gen_range(-1.0..1.0);
                    if tie_heavy {
                        snap(v)
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    // Occasionally colocate candidates exactly (distance 0 → maximal
    // proximity redundancy) to stress the penalty path.
    if rng.gen_bool(0.3) {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        candidates[dst] = candidates[src].clone();
    }

    let regions: Vec<UncertaintyRegion> = (0..n)
        .map(|_| {
            if rng.gen_bool(0.05) {
                // Unbounded: infinite diameter, always top priority.
                return UncertaintyRegion::unbounded(obj_dim);
            }
            let mut u = UncertaintyRegion::unbounded(obj_dim);
            let lo: Vec<f64> = (0..obj_dim)
                .map(|_| {
                    let v = rng.gen_range(-2.0..2.0);
                    if tie_heavy {
                        snap(v)
                    } else {
                        v
                    }
                })
                .collect();
            let hi: Vec<f64> = lo
                .iter()
                .map(|&l| {
                    // ~1/8 of widths are exactly zero in this dimension.
                    let w = if rng.gen_bool(0.125) {
                        0.0
                    } else {
                        let w = rng.gen_range(0.0..2.0);
                        if tie_heavy {
                            snap(w)
                        } else {
                            w
                        }
                    };
                    l + w
                })
                .collect();
            u.intersect(&lo, &hi);
            u
        })
        .collect();

    let statuses: Vec<Status> = (0..n)
        .map(|_| match rng.gen_range(0..10u32) {
            0 => Status::Dropped,
            1 => Status::Quarantined,
            2 => Status::Pareto,
            _ => Status::Undecided,
        })
        .collect();
    let evaluated: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.15)).collect();

    Case {
        candidates,
        regions,
        statuses,
        evaluated,
        q: rng.gen_range(1..=4usize),
        diversity: rng.gen_range(0.0..0.95),
        radius: rng.gen_range(0.05..1.0),
    }
}

#[test]
fn greedy_matches_brute_force_reference_over_seeded_cases() {
    let cases = 1200u64;
    for case in 0..cases {
        let mut rng = case_rng(testkit::test_seed(), case);
        let c = draw_case(&mut rng);
        let fast = select_batch(
            &c.candidates,
            &c.regions,
            &c.statuses,
            &c.evaluated,
            c.q,
            c.diversity,
            c.radius,
        );
        let reference = reference_select_batch(
            &c.candidates,
            &c.regions,
            &c.statuses,
            &c.evaluated,
            c.q,
            c.diversity,
            c.radius,
        );
        let fast_idx: Vec<usize> = fast.iter().map(|p| p.index).collect();
        let ref_idx: Vec<usize> = reference.iter().map(|p| p.index).collect();
        assert_eq!(
            fast_idx, ref_idx,
            "case {case}: index sequence diverged (q={}, γ={}, r={})",
            c.q, c.diversity, c.radius
        );
        for (f, r) in fast.iter().zip(&reference) {
            assert_eq!(
                f.diameter.to_bits(),
                r.diameter.to_bits(),
                "case {case}: diameter bits for candidate {}",
                f.index
            );
            assert_eq!(
                f.score.to_bits(),
                r.score.to_bits(),
                "case {case}: score bits for candidate {}",
                f.index
            );
        }
    }
}

#[test]
fn batch_picks_satisfy_structural_laws_over_seeded_cases() {
    for case in 0..400u64 {
        let mut rng = case_rng(testkit::test_seed() ^ 0x5bd1_e995, case);
        let c = draw_case(&mut rng);
        let picks = select_batch(
            &c.candidates,
            &c.regions,
            &c.statuses,
            &c.evaluated,
            c.q,
            c.diversity,
            c.radius,
        );
        let eligible = (0..c.candidates.len())
            .filter(|&i| {
                c.statuses[i].is_active() && !c.evaluated[i] && c.regions[i].diameter() > 0.0
            })
            .count();
        assert_eq!(picks.len(), c.q.min(eligible), "case {case}: batch size");
        let mut seen = std::collections::BTreeSet::new();
        for p in &picks {
            assert!(
                seen.insert(p.index),
                "case {case}: duplicate member {}",
                p.index
            );
            assert!(
                c.statuses[p.index].is_active(),
                "case {case}: inactive member"
            );
            assert!(
                !c.evaluated[p.index],
                "case {case}: already-evaluated member"
            );
            assert!(
                p.score <= p.diameter || p.score.is_nan(),
                "case {case}: score above diameter"
            );
        }
        for w in picks.windows(2) {
            assert!(
                w[1].score <= w[0].score,
                "case {case}: scores increased along the batch"
            );
        }
        if let Some(first) = picks.first() {
            assert_eq!(
                first.score.to_bits(),
                first.diameter.to_bits(),
                "case {case}: first pick must be unpenalized"
            );
        }
    }
}

//! Property tests for `pareto::hypervolume` on degenerate inputs —
//! duplicate points, points on (or beyond) the reference boundary, and
//! single-point fronts — checked differentially against testkit's
//! inclusion–exclusion reference, which handles all of these without any
//! front filtering.

use proptest::prelude::*;
use testkit::diff::close;
use testkit::reference;

/// A 2-D point set in the unit square (≤ 10 points, so the exponential
/// reference stays cheap).
fn points2() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..10usize)
        .prop_map(|pts| pts.into_iter().map(|(a, b)| vec![a, b]).collect())
}

/// A 3-D point set in the unit cube.
fn points3() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..9usize)
        .prop_map(|pts| pts.into_iter().map(|(a, b, c)| vec![a, b, c]).collect())
}

fn fast_hv(pts: &[Vec<f64>], reference: &[f64]) -> f64 {
    pareto::hypervolume::hypervolume(pts, reference).expect("finite inputs are accepted")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn single_point_front_is_a_box(p in (0.0f64..1.0, 0.0f64..1.0)) {
        let pts = vec![vec![p.0, p.1]];
        let reference = [1.25, 1.5];
        let expected = (1.25 - p.0) * (1.5 - p.1);
        let hv = fast_hv(&pts, &reference);
        prop_assert!(close(hv, expected, 1e-9), "{hv} vs {expected}");
        prop_assert!(close(hv, reference::hypervolume(&pts, &reference), 1e-9));
    }

    #[test]
    fn duplicates_contribute_nothing(pts in points2(), pick in 0usize..64) {
        let reference = [1.2, 1.2];
        let base = fast_hv(&pts, &reference);
        let mut salted = pts.clone();
        salted.push(pts[pick % pts.len()].clone());
        salted.push(pts[0].clone());
        let hv = fast_hv(&salted, &reference);
        prop_assert!(close(hv, base, 1e-9), "duplicates changed HV: {base} -> {hv}");
        prop_assert!(close(hv, reference::hypervolume(&salted, &reference), 1e-9));
    }

    #[test]
    fn boundary_points_add_zero_volume(pts in points2(), pick in 0usize..64, axis in 0usize..2) {
        // A point pinned to the reference value in one coordinate spans a
        // zero-width slab; one beyond the reference must be clipped away.
        let reference = [1.2, 1.3];
        let base = fast_hv(&pts, &reference);
        let mut on_boundary = pts[pick % pts.len()].clone();
        on_boundary[axis] = reference[axis];
        let mut beyond = pts[0].clone();
        beyond[axis] = reference[axis] + 0.7;
        let mut salted = pts.clone();
        salted.push(on_boundary);
        salted.push(beyond);
        let hv = fast_hv(&salted, &reference);
        // The slab itself is measure-zero only when the pinned point adds
        // nothing along the other axis; in general it can still contribute
        // inside the box, so the authoritative comparison is differential.
        prop_assert!(close(hv, reference::hypervolume(&salted, &reference), 1e-9));
        prop_assert!(hv + 1e-9 >= base, "adding points shrank HV: {base} -> {hv}");
    }

    #[test]
    fn fully_degenerate_front_has_zero_volume(v in 0.0f64..1.0, n in 1usize..6) {
        // All points identical *and* on the reference boundary.
        let reference = [v, v];
        let pts: Vec<Vec<f64>> = (0..n).map(|_| vec![v, v]).collect();
        let hv = fast_hv(&pts, &reference);
        prop_assert!(close(hv, 0.0, 1e-12), "zero-size box has HV {hv}");
        prop_assert!(close(hv, reference::hypervolume(&pts, &reference), 1e-12));
    }

    #[test]
    fn degenerate_3d_sets_match_reference(pts in points3(), pick in 0usize..64, axis in 0usize..3) {
        let reference = [1.1, 1.2, 1.3];
        let mut salted = pts.clone();
        let mut pinned = pts[pick % pts.len()].clone();
        pinned[axis] = reference[axis];
        salted.push(pinned);
        salted.push(pts[0].clone()); // duplicate
        let hv = fast_hv(&salted, &reference);
        prop_assert!(close(hv, reference::hypervolume(&salted, &reference), 1e-9));
    }

    #[test]
    fn monotone_under_point_improvement(pts in points2(), pick in 0usize..64, shrink in 0.1f64..0.9) {
        // Improving (shrinking) one point can only grow the hypervolume —
        // a sanity law the degenerate clipping must not break.
        let reference = [1.2, 1.2];
        let base = fast_hv(&pts, &reference);
        let mut improved = pts.clone();
        let i = pick % pts.len();
        for c in improved[i].iter_mut() {
            *c *= shrink;
        }
        let hv = fast_hv(&improved, &reference);
        prop_assert!(hv + 1e-9 >= base, "improvement shrank HV: {base} -> {hv}");
        prop_assert!(close(hv, reference::hypervolume(&improved, &reference), 1e-9));
    }
}

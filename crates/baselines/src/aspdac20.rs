//! ASPDAC'20: FIST — feature-importance sampling and tree-based
//! parameter tuning (Xie et al.).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use boost::{GbmParams, GradientBoosting};
use ppatuner::{QorOracle, SourceData};

use crate::common::{check_inputs, evaluate_all, random_weights, BaselineResult};
use crate::Result;

/// Options of the [`Aspdac20`] tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aspdac20Params {
    /// Total tool-run budget (the paper's fixed 400 / 70).
    pub budget: usize,
    /// Runs spent on importance-guided initialization sampling.
    pub initial_samples: usize,
    /// Top parameters treated as "important" (the paper clusters
    /// configurations by the important parameters).
    pub top_features: usize,
    /// Boosted-tree hyper-parameters of the surrogate.
    pub gbm: GbmParams,
    /// Exploration fraction: share of each exploitation round spent on
    /// random picks.
    pub explore_frac: f64,
    /// Recommendations evaluated per round.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Aspdac20Params {
    fn default() -> Self {
        Aspdac20Params {
            budget: 100,
            initial_samples: 25,
            top_features: 4,
            gbm: GbmParams::default(),
            explore_frac: 0.2,
            batch: 5,
            seed: 0,
        }
    }
}

/// The ASPDAC'20 baseline: FIST.
///
/// Phase 1 learns per-parameter importances from **prior (source-task)
/// data** with boosted trees — the one piece of transfer the original
/// method performs. Phase 2 samples initial configurations stratified
/// over the important parameters' level combinations (the paper's
/// "feature-importance sampling"), then alternates boosted-tree model
/// fitting on the measured target data with batched
/// exploit-plus-explore recommendation until the budget is spent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aspdac20 {
    params: Aspdac20Params,
}

impl Aspdac20 {
    /// Creates the tuner.
    pub fn new(params: Aspdac20Params) -> Self {
        Aspdac20 { params }
    }

    /// Runs FIST. `source` supplies the prior data importances are
    /// learned from; when empty, importances fall back to uniform.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BaselineError`] for unusable inputs or surrogate
    /// failures.
    pub fn tune<O: QorOracle>(
        &self,
        source: &SourceData,
        candidates: &[Vec<f64>],
        oracle: &mut O,
    ) -> Result<BaselineResult> {
        check_inputs(candidates, self.params.budget)?;
        let n = candidates.len();
        let dim = candidates[0].len();
        let mut rng = StdRng::seed_from_u64(self.params.seed);

        // ---- Phase 1: feature importances from the source task.
        let importances = source_importances(source, dim, self.params.gbm, &mut rng)?;
        let mut ranked: Vec<usize> = (0..dim).collect();
        ranked.sort_by(|&a, &b| {
            importances[b]
                .partial_cmp(&importances[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let important: Vec<usize> = ranked
            .into_iter()
            .take(self.params.top_features.max(1))
            .collect();

        // ---- Phase 2a: importance-stratified initialization. Cluster
        // candidates by the sign pattern (low/high halves) of important
        // parameters and take one per cluster round-robin.
        let init = self
            .params
            .initial_samples
            .clamp(2, self.params.budget)
            .min(n);
        let cell_of = |c: &[f64]| -> usize {
            important
                .iter()
                .fold(0usize, |acc, &d| (acc << 1) | usize::from(c[d] >= 0.5))
        };
        let n_cells = 1usize << important.len().min(16);
        let mut cells: Vec<Vec<usize>> = vec![Vec::new(); n_cells];
        let mut order: Vec<usize> = (0..n).collect();
        // Shuffle so within-cell choice is randomized.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &i in &order {
            cells[cell_of(&candidates[i])].push(i);
        }
        let mut picks = Vec::with_capacity(init);
        let mut depth = 0usize;
        'fill: loop {
            let mut any = false;
            for cell in &cells {
                if let Some(&i) = cell.get(depth) {
                    picks.push(i);
                    any = true;
                    if picks.len() >= init {
                        break 'fill;
                    }
                }
            }
            if !any {
                break;
            }
            depth += 1;
        }

        let mut evaluated: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut flag = vec![false; n];
        evaluate_all(&picks, oracle, &mut evaluated, &mut flag);
        let n_obj = evaluated[0].1.len();

        // ---- Phase 2b: boosted-tree exploit/explore rounds.
        while oracle.runs() < self.params.budget && evaluated.len() < n {
            let x: Vec<Vec<f64>> = evaluated
                .iter()
                .map(|(i, _)| candidates[*i].clone())
                .collect();
            let mut models = Vec::with_capacity(n_obj);
            for k in 0..n_obj {
                let y: Vec<f64> = evaluated.iter().map(|(_, v)| v[k]).collect();
                models.push(GradientBoosting::fit(&x, &y, self.params.gbm, &mut rng)?);
            }

            let unevaluated: Vec<usize> = (0..n).filter(|&i| !flag[i]).collect();
            if unevaluated.is_empty() {
                break;
            }
            let room = self.params.budget - oracle.runs();
            let batch_n = self.params.batch.min(room).max(1);
            let n_explore =
                ((batch_n as f64 * self.params.explore_frac).round() as usize).min(batch_n);
            let n_exploit = batch_n - n_explore;

            let mut chosen: Vec<usize> = Vec::with_capacity(batch_n);
            // Exploit: scalarization sweeps over model predictions.
            let preds: Vec<Vec<f64>> = unevaluated
                .iter()
                .map(|&i| models.iter().map(|m| m.predict(&candidates[i])).collect())
                .collect();
            for _ in 0..n_exploit {
                let w = random_weights(n_obj, &mut rng);
                let mut best: Option<(usize, f64)> = None;
                for (pos, &i) in unevaluated.iter().enumerate() {
                    if chosen.contains(&i) {
                        continue;
                    }
                    let s: f64 = preds[pos].iter().zip(&w).map(|(&p, &wk)| p * wk).sum();
                    match best {
                        Some((_, bv)) if bv <= s => {}
                        _ => best = Some((i, s)),
                    }
                }
                if let Some((i, _)) = best {
                    chosen.push(i);
                }
            }
            // Explore: random unevaluated picks.
            let mut pool: Vec<usize> = unevaluated
                .iter()
                .copied()
                .filter(|i| !chosen.contains(i))
                .collect();
            for _ in 0..n_explore {
                if pool.is_empty() {
                    break;
                }
                let j = rng.gen_range(0..pool.len());
                chosen.push(pool.swap_remove(j));
            }
            evaluate_all(&chosen, oracle, &mut evaluated, &mut flag);
        }

        Ok(BaselineResult::from_evaluations(evaluated, oracle.runs()))
    }
}

/// Averaged (over objectives) boosted-tree feature importances from the
/// source data; uniform when no source is available.
fn source_importances<R: Rng + ?Sized>(
    source: &SourceData,
    dim: usize,
    gbm: GbmParams,
    rng: &mut R,
) -> Result<Vec<f64>> {
    let n_obj = match source.objectives() {
        Some(m) if source.len() >= 10 => m,
        _ => return Ok(vec![1.0 / dim as f64; dim]),
    };
    // SourceData exposes x/y only through the tuner crate's API; rebuild
    // per-objective training sets from its public accessors.
    let (xs, ys) = source_views(source, n_obj);
    let mut total = vec![0.0; dim];
    for y in &ys {
        let model = GradientBoosting::fit(&xs, y, gbm, rng)?;
        for (t, v) in total.iter_mut().zip(model.feature_importances()) {
            *t += v;
        }
    }
    let s: f64 = total.iter().sum();
    if s > 0.0 {
        for v in &mut total {
            *v /= s;
        }
    } else {
        total = vec![1.0 / dim as f64; dim];
    }
    Ok(total)
}

/// Extracts `(inputs, per-objective outputs)` from [`SourceData`].
fn source_views(source: &SourceData, n_obj: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let xs = source.inputs().to_vec();
    let ys = (0..n_obj)
        .map(|k| source.outputs().iter().map(|y| y[k]).collect())
        .collect();
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatuner::VecOracle;

    fn toy(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let candidates: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                vec![x, ((i * 13) % n) as f64 / n as f64, 0.5]
            })
            .collect();
        let truth = candidates
            .iter()
            .map(|p| vec![p[0] + 0.1, (1.0 - p[0]).powi(2) + 0.05 * p[1] + 0.1])
            .collect();
        (candidates, truth)
    }

    fn source_for(candidates: &[Vec<f64>], truth: &[Vec<f64>]) -> SourceData {
        SourceData::new(
            candidates.to_vec(),
            truth
                .iter()
                .map(|y| y.iter().map(|v| v * 1.05 + 0.01).collect())
                .collect(),
        )
        .unwrap()
    }

    fn quick() -> Aspdac20Params {
        Aspdac20Params {
            budget: 30,
            initial_samples: 12,
            top_features: 2,
            batch: 4,
            gbm: GbmParams {
                n_trees: 30,
                ..Default::default()
            },
            seed: 6,
            ..Default::default()
        }
    }

    #[test]
    fn respects_budget() {
        let (candidates, truth) = toy(80);
        let source = source_for(&candidates, &truth);
        let mut oracle = VecOracle::new(truth);
        let r = Aspdac20::new(quick())
            .tune(&source, &candidates, &mut oracle)
            .unwrap();
        assert!(r.runs <= 30);
        assert!(!r.pareto_indices.is_empty());
    }

    #[test]
    fn importances_pick_the_signal_dimension() {
        let (candidates, truth) = toy(120);
        let source = source_for(&candidates, &truth);
        let mut rng = StdRng::seed_from_u64(1);
        let imp = source_importances(&source, 3, GbmParams::default(), &mut rng).unwrap();
        // Dimension 0 carries nearly all the signal.
        assert!(imp[0] > imp[1] && imp[0] > imp[2], "{imp:?}");
    }

    #[test]
    fn uniform_importances_without_source() {
        let mut rng = StdRng::seed_from_u64(1);
        let imp =
            source_importances(&SourceData::empty(), 4, GbmParams::default(), &mut rng).unwrap();
        assert_eq!(imp, vec![0.25; 4]);
    }

    #[test]
    fn works_without_source() {
        let (candidates, truth) = toy(60);
        let mut oracle = VecOracle::new(truth);
        let r = Aspdac20::new(quick())
            .tune(&SourceData::empty(), &candidates, &mut oracle)
            .unwrap();
        assert!(!r.pareto_indices.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (candidates, truth) = toy(50);
        let source = source_for(&candidates, &truth);
        let run = || {
            let mut oracle = VecOracle::new(truth.clone());
            Aspdac20::new(quick())
                .tune(&source, &candidates, &mut oracle)
                .unwrap()
        };
        assert_eq!(run(), run());
    }
}

//! NSGA-II over a finite candidate set — the classical evolutionary
//! multi-objective control (not in the paper's tables, but the standard
//! non-model-based comparison point for Pareto-driven tuners).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use pareto::front::{crowding_distance, non_dominated_sort};
use ppatuner::QorOracle;

use crate::common::{check_inputs, distinct_indices, evaluate_all, BaselineResult};
use crate::{BaselineError, Result};

/// Options of the [`Nsga2`] tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nsga2Params {
    /// Total tool-run budget.
    pub budget: usize,
    /// Population size.
    pub population: usize,
    /// Offspring produced (and evaluated) per generation.
    pub offspring: usize,
    /// Binary-tournament size.
    pub tournament: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Nsga2Params {
    fn default() -> Self {
        Nsga2Params {
            budget: 100,
            population: 24,
            offspring: 12,
            tournament: 2,
            seed: 0,
        }
    }
}

/// NSGA-II adapted to a finite candidate list: "crossover/mutation" picks
/// an unevaluated candidate nearest the blend of two parents (plus an
/// occasional random immigrant), so the search stays inside the
/// benchmark's configuration set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nsga2 {
    params: Nsga2Params,
}

impl Nsga2 {
    /// Creates the tuner.
    pub fn new(params: Nsga2Params) -> Self {
        Nsga2 { params }
    }

    /// Runs the evolutionary loop until the budget is spent.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BaselineError`] for unusable inputs.
    pub fn tune<O: QorOracle>(
        &self,
        candidates: &[Vec<f64>],
        oracle: &mut O,
    ) -> Result<BaselineResult> {
        check_inputs(candidates, self.params.budget)?;
        if self.params.population < 4 || self.params.offspring == 0 {
            return Err(BaselineError::InvalidInput {
                reason: "population >= 4 and offspring >= 1 required",
            });
        }
        let n = candidates.len();
        let mut rng = StdRng::seed_from_u64(self.params.seed);

        let init = self.params.population.min(self.params.budget).min(n);
        let mut evaluated: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut flag = vec![false; n];
        let picks = distinct_indices(init, n, &mut rng);
        evaluate_all(&picks, oracle, &mut evaluated, &mut flag);

        // Population: positions into `evaluated`.
        let mut pop: Vec<usize> = (0..evaluated.len()).collect();

        while oracle.runs() < self.params.budget && evaluated.len() < n {
            // Parent selection by (rank, crowding) binary tournaments.
            let pts: Vec<Vec<f64>> = pop.iter().map(|&e| evaluated[e].1.clone()).collect();
            let (rank, crowd) = rank_and_crowding(&pts);
            let tournament = |rng: &mut StdRng| -> usize {
                let mut best = rng.gen_range(0..pop.len());
                for _ in 1..self.params.tournament.max(2) {
                    let c = rng.gen_range(0..pop.len());
                    if (rank[c], std::cmp::Reverse(ordered(crowd[c])))
                        < (rank[best], std::cmp::Reverse(ordered(crowd[best])))
                    {
                        best = c;
                    }
                }
                best
            };

            // Offspring: blend two parents in configuration space, then
            // snap to the nearest unevaluated candidate.
            let room = self.params.budget - oracle.runs();
            let n_children = self.params.offspring.min(room);
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                let immigrant = rng.gen::<f64>() < 0.15;
                let target_point: Vec<f64> = if immigrant {
                    (0..candidates[0].len()).map(|_| rng.gen()).collect()
                } else {
                    let a = &candidates[evaluated[pop[tournament(&mut rng)]].0];
                    let b = &candidates[evaluated[pop[tournament(&mut rng)]].0];
                    let alpha: f64 = rng.gen();
                    a.iter()
                        .zip(b)
                        .map(|(&x, &y)| {
                            let v = alpha * x + (1.0 - alpha) * y;
                            // Polynomial-ish mutation.
                            (v + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0)
                        })
                        .collect()
                };
                if let Some(i) = nearest_unevaluated(candidates, &flag, &target_point, &children) {
                    children.push(i);
                }
            }
            if children.is_empty() {
                break;
            }
            let first_new = evaluated.len();
            evaluate_all(&children, oracle, &mut evaluated, &mut flag);

            // Environmental selection: rank + crowding over parents and
            // children, keep `population`.
            pop.extend(first_new..evaluated.len());
            let pts: Vec<Vec<f64>> = pop.iter().map(|&e| evaluated[e].1.clone()).collect();
            pop = select_survivors(&pop, &pts, self.params.population);
        }

        Ok(BaselineResult::from_evaluations(evaluated, oracle.runs()))
    }
}

/// Total-orderable wrapper for crowding values (∞ allowed, NaN impossible).
fn ordered(v: f64) -> std::cmp::Reverse<u64> {
    std::cmp::Reverse(v.to_bits())
}

/// Per-point (front rank, crowding distance within its front).
fn rank_and_crowding(pts: &[Vec<f64>]) -> (Vec<usize>, Vec<f64>) {
    let fronts = non_dominated_sort(pts);
    let mut rank = vec![0usize; pts.len()];
    let mut crowd = vec![0.0f64; pts.len()];
    for (r, front) in fronts.iter().enumerate() {
        let sub: Vec<Vec<f64>> = front.iter().map(|&i| pts[i].clone()).collect();
        let d = crowding_distance(&sub);
        for (&i, &di) in front.iter().zip(&d) {
            rank[i] = r;
            crowd[i] = di;
        }
    }
    (rank, crowd)
}

/// NSGA-II environmental selection: fill by front rank, break the last
/// front by crowding distance.
fn select_survivors(pop: &[usize], pts: &[Vec<f64>], keep: usize) -> Vec<usize> {
    if pop.len() <= keep {
        return pop.to_vec();
    }
    let fronts = non_dominated_sort(pts);
    let mut out = Vec::with_capacity(keep);
    for front in fronts {
        if out.len() + front.len() <= keep {
            out.extend(front.iter().map(|&i| pop[i]));
            continue;
        }
        let sub: Vec<Vec<f64>> = front.iter().map(|&i| pts[i].clone()).collect();
        let d = crowding_distance(&sub);
        let mut order: Vec<usize> = (0..front.len()).collect();
        order.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).unwrap_or(std::cmp::Ordering::Equal));
        for &k in order.iter().take(keep - out.len()) {
            out.push(pop[front[k]]);
        }
        break;
    }
    out
}

/// Nearest unevaluated candidate to `target`, excluding already-chosen
/// children.
fn nearest_unevaluated(
    candidates: &[Vec<f64>],
    flag: &[bool],
    target: &[f64],
    chosen: &[usize],
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in candidates.iter().enumerate() {
        if flag[i] || chosen.contains(&i) {
            continue;
        }
        let d: f64 = c.iter().zip(target).map(|(&x, &y)| (x - y) * (x - y)).sum();
        match best {
            Some((_, bd)) if bd <= d => {}
            _ => best = Some((i, d)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatuner::VecOracle;

    fn toy(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let candidates: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / (n - 1) as f64, ((i * 31) % n) as f64 / n as f64])
            .collect();
        let truth = candidates
            .iter()
            .map(|p| vec![p[0] + 0.2 * p[1] + 0.1, (1.0 - p[0]).powi(2) + 0.1])
            .collect();
        (candidates, truth)
    }

    fn quick() -> Nsga2Params {
        Nsga2Params {
            budget: 40,
            population: 12,
            offspring: 6,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn respects_budget() {
        let (candidates, truth) = toy(120);
        let mut oracle = VecOracle::new(truth);
        let r = Nsga2::new(quick()).tune(&candidates, &mut oracle).unwrap();
        assert!(r.runs <= 40);
        assert!(!r.pareto_indices.is_empty());
    }

    #[test]
    fn improves_over_its_own_initialization() {
        let (candidates, truth) = toy(200);
        let golden: Vec<Vec<f64>> = pareto::front::pareto_front(&truth)
            .into_iter()
            .map(|i| truth[i].clone())
            .collect();
        let reference = pareto::hypervolume::reference_point(&truth, 1.1).unwrap();
        let hv = |idx: &[usize]| {
            let pts: Vec<Vec<f64>> = idx.iter().map(|&i| truth[i].clone()).collect();
            pareto::hypervolume::hypervolume_error(&golden, &pts, &reference).unwrap()
        };
        // Evolution with extra budget should beat a same-seed random
        // population of the initial size.
        let mut o = VecOracle::new(truth.clone());
        let evolved = Nsga2::new(Nsga2Params {
            budget: 60,
            ..quick()
        })
        .tune(&candidates, &mut o)
        .unwrap();
        let mut o = VecOracle::new(truth.clone());
        let random = crate::RandomSearch::new(12, 3)
            .tune(&candidates, &mut o)
            .unwrap();
        assert!(
            hv(&evolved.pareto_indices) <= hv(&random.pareto_indices) + 1e-9,
            "evolved {} vs initial-random {}",
            hv(&evolved.pareto_indices),
            hv(&random.pareto_indices)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (candidates, truth) = toy(80);
        let run = || {
            let mut oracle = VecOracle::new(truth.clone());
            Nsga2::new(quick()).tune(&candidates, &mut oracle).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn validates_parameters() {
        let (candidates, truth) = toy(10);
        let mut oracle = VecOracle::new(truth);
        for p in [
            Nsga2Params {
                population: 2,
                ..quick()
            },
            Nsga2Params {
                offspring: 0,
                ..quick()
            },
            Nsga2Params {
                budget: 0,
                ..quick()
            },
        ] {
            assert!(Nsga2::new(p).tune(&candidates, &mut oracle).is_err());
        }
    }

    #[test]
    fn survivor_selection_prefers_first_front() {
        let pts = vec![
            vec![1.0, 1.0], // rank 0
            vec![2.0, 2.0], // rank 1
            vec![0.5, 3.0], // rank 0
            vec![3.0, 3.0], // rank 2
        ];
        let pop = vec![10, 11, 12, 13];
        let kept = select_survivors(&pop, &pts, 2);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&10) && kept.contains(&12));
    }
}

//! TCAD'19: Pareto-driven active learning with GP surrogates (Ma et al.,
//! *Cross-layer optimization for high speed adders: a Pareto-driven
//! machine learning approach*).
//!
//! The original adapts Pareto active learning (PAL) to design-space
//! exploration: GP surrogates classify candidates into Pareto / dropped /
//! undecided via confidence regions and evaluate the most uncertain
//! candidate each round. That is exactly the loop `ppatuner` implements —
//! minus the transfer kernel. This baseline therefore wraps the same
//! machinery with an **empty source task** (plain GPs), so the PPATuner
//! comparison isolates the paper's contribution: knowledge transfer.
//! Without a source, classification converges more slowly, which is why
//! this method's run counts exceed PPATuner's (as in the paper's tables).

use ppatuner::{PpaTuner, PpaTunerConfig, QorOracle, SourceData};

use crate::common::{check_inputs, BaselineResult};
use crate::{BaselineError, Result};

/// Options of the [`Tcad19`] tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tcad19Params {
    /// Total tool-run budget (initialization + active-learning rounds).
    pub budget: usize,
    /// Runs spent on initialization sampling.
    pub initial_samples: usize,
    /// Region-scale coefficient τ (as in PAL).
    pub tau: f64,
    /// Relative per-objective relaxation δ.
    pub delta_rel: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Tcad19Params {
    fn default() -> Self {
        Tcad19Params {
            budget: 150,
            initial_samples: 20,
            tau: 1.5,
            delta_rel: 0.05,
            seed: 0,
        }
    }
}

/// The TCAD'19 baseline: GP-based Pareto-driven active learning
/// (no-transfer PAL).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tcad19 {
    params: Tcad19Params,
}

impl Tcad19 {
    /// Creates the tuner.
    pub fn new(params: Tcad19Params) -> Self {
        Tcad19 { params }
    }

    /// Runs the active-learning loop on the target task.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BaselineError`] for unusable inputs or surrogate
    /// failures.
    pub fn tune<O: QorOracle>(
        &self,
        candidates: &[Vec<f64>],
        oracle: &mut O,
    ) -> Result<BaselineResult> {
        check_inputs(candidates, self.params.budget)?;
        if self.params.initial_samples.max(2) >= self.params.budget {
            return Err(BaselineError::InvalidInput {
                reason: "budget must exceed the initialization samples",
            });
        }
        let config = PpaTunerConfig {
            tau: self.params.tau,
            delta_rel: self.params.delta_rel,
            initial_samples: self.params.initial_samples.max(2),
            max_iterations: self.params.budget - self.params.initial_samples.max(2),
            seed: self.params.seed,
            // PAL reports its classified set plus what it measured; the
            // predicted-front-with-verification closing step is PPATuner's
            // contribution, not 2019 art.
            include_predicted_front: false,
            ..Default::default()
        };
        let result = PpaTuner::new(config)
            .run(&SourceData::empty(), candidates, oracle)
            .map_err(|e| BaselineError::Model(e.to_string()))?;
        Ok(BaselineResult {
            pareto_indices: result.pareto_indices,
            evaluated: result.evaluated,
            runs: result.runs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatuner::VecOracle;

    fn toy(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let candidates: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let truth = candidates
            .iter()
            .map(|p| vec![p[0] + 0.1, (1.0 - p[0]).powi(2) + 0.1])
            .collect();
        (candidates, truth)
    }

    fn quick() -> Tcad19Params {
        Tcad19Params {
            budget: 25,
            initial_samples: 8,
            seed: 4,
            ..Default::default()
        }
    }

    #[test]
    fn respects_budget() {
        let (candidates, truth) = toy(60);
        let mut oracle = VecOracle::new(truth);
        let r = Tcad19::new(quick()).tune(&candidates, &mut oracle).unwrap();
        assert!(r.runs <= 25);
        assert!(!r.pareto_indices.is_empty());
    }

    #[test]
    fn stops_early_when_classified() {
        // A trivially separable landscape: classification finishes well
        // before the budget.
        let (candidates, truth) = toy(20);
        let mut oracle = VecOracle::new(truth);
        let p = Tcad19Params {
            budget: 200,
            initial_samples: 8,
            delta_rel: 0.2,
            ..quick()
        };
        let r = Tcad19::new(p).tune(&candidates, &mut oracle).unwrap();
        assert!(r.runs < 200, "classification should stop the loop early");
    }

    #[test]
    fn deterministic_given_seed() {
        let (candidates, truth) = toy(40);
        let run = || {
            let mut oracle = VecOracle::new(truth.clone());
            Tcad19::new(quick()).tune(&candidates, &mut oracle).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn front_members_are_mutually_nondominated() {
        let (candidates, truth) = toy(50);
        let mut oracle = VecOracle::new(truth.clone());
        let r = Tcad19::new(quick()).tune(&candidates, &mut oracle).unwrap();
        for &i in &r.pareto_indices {
            for &j in &r.pareto_indices {
                if i != j {
                    assert!(!pareto::dominance::dominates(&truth[i], &truth[j]));
                }
            }
        }
    }

    #[test]
    fn rejects_budget_not_exceeding_init() {
        let (candidates, truth) = toy(10);
        let mut oracle = VecOracle::new(truth);
        let p = Tcad19Params {
            budget: 8,
            initial_samples: 8,
            ..quick()
        };
        assert!(Tcad19::new(p).tune(&candidates, &mut oracle).is_err());
    }
}

//! MLCAD'19: classical Bayesian optimization with the lower-confidence-
//! bound acquisition (Ma, Yu & Yu, *CAD tool design space exploration via
//! Bayesian optimization*).

use rand::rngs::StdRng;
use rand::SeedableRng;

use gp::kernel::SquaredExponential;
use gp::GpRegressor;
use ppatuner::QorOracle;

use crate::common::{
    check_inputs, distinct_indices, evaluate_all, objective_ranges, random_weights, BaselineResult,
};
use crate::Result;

/// How the multi-objective LCB values are scalarized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightStrategy {
    /// Equal fixed weights every iteration — the faithful reading of
    /// MLCAD'19's *classical* BO-LCB flow (one acquisition, one
    /// preference). Concentrates the budget on one front region, which is
    /// why the original underperforms on whole-front metrics.
    Fixed,
    /// A fresh random weight vector per iteration (ParEGO-style sweep) —
    /// a stronger variant kept for ablations.
    RandomSweep,
}

/// Options of the [`Mlcad19`] tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mlcad19Params {
    /// Total tool-run budget (the paper's fixed 400 / 70).
    pub budget: usize,
    /// Runs spent on random initialization.
    pub initial_samples: usize,
    /// Exploration weight κ of the LCB `μ − κ·σ`.
    pub kappa: f64,
    /// Unevaluated candidates screened per iteration (acquisition is
    /// argmin over this random subset — keeps iterations cheap on
    /// 5000-point benchmarks).
    pub screen_size: usize,
    /// Re-select the GP lengthscale every this many iterations.
    pub refit_every: usize,
    /// Scalarization strategy.
    pub weights: WeightStrategy,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Mlcad19Params {
    fn default() -> Self {
        Mlcad19Params {
            budget: 100,
            initial_samples: 20,
            kappa: 2.0,
            screen_size: 512,
            refit_every: 20,
            weights: WeightStrategy::Fixed,
            seed: 0,
        }
    }
}

/// The MLCAD'19 baseline: per-objective GP surrogates, random-weight
/// scalarized LCB acquisition, fixed budget.
///
/// Multi-objective handling follows the common BO recipe the paper's
/// description implies: each iteration draws a fresh positive weight
/// vector, scalarizes the per-objective normalized LCB values, and
/// evaluates the screened candidate minimizing the scalarization —
/// sweeping different regions of the trade-off curve across iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mlcad19 {
    params: Mlcad19Params,
}

impl Mlcad19 {
    /// Creates the tuner.
    pub fn new(params: Mlcad19Params) -> Self {
        Mlcad19 { params }
    }

    /// Runs BO-LCB on the target task.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BaselineError`] for unusable inputs or surrogate
    /// failures.
    pub fn tune<O: QorOracle>(
        &self,
        candidates: &[Vec<f64>],
        oracle: &mut O,
    ) -> Result<BaselineResult> {
        check_inputs(candidates, self.params.budget)?;
        let n = candidates.len();
        let dim = candidates[0].len();
        let mut rng = StdRng::seed_from_u64(self.params.seed);

        let init = self
            .params
            .initial_samples
            .clamp(2, self.params.budget)
            .min(n);
        let mut evaluated: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut flag = vec![false; n];
        let picks = distinct_indices(init, n, &mut rng);
        evaluate_all(&picks, oracle, &mut evaluated, &mut flag);
        let n_obj = evaluated[0].1.len();

        let mut lengthscales = vec![0.5; n_obj];
        let mut iter = 0usize;
        while oracle.runs() < self.params.budget && evaluated.len() < n {
            // Fit one GP per objective; periodically re-select the
            // lengthscale by marginal likelihood over a small grid.
            let x: Vec<Vec<f64>> = evaluated
                .iter()
                .map(|(i, _)| candidates[*i].clone())
                .collect();
            let mut gps = Vec::with_capacity(n_obj);
            for k in 0..n_obj {
                let y: Vec<f64> = evaluated.iter().map(|(_, v)| v[k]).collect();
                if iter.is_multiple_of(self.params.refit_every.max(1)) {
                    lengthscales[k] = select_lengthscale(&x, &y, dim)?;
                }
                let kernel = SquaredExponential::isotropic(dim, 1.0, lengthscales[k])?;
                gps.push(GpRegressor::fit(x.clone(), y, kernel, 1e-4)?);
            }

            // Screen a random subset of unevaluated candidates.
            let unevaluated: Vec<usize> = (0..n).filter(|&i| !flag[i]).collect();
            if unevaluated.is_empty() {
                break;
            }
            let screened: Vec<usize> = if unevaluated.len() <= self.params.screen_size {
                unevaluated
            } else {
                distinct_indices(self.params.screen_size, unevaluated.len(), &mut rng)
                    .into_iter()
                    .map(|j| unevaluated[j])
                    .collect()
            };

            // Scalarized, range-normalized LCB.
            let w = match self.params.weights {
                WeightStrategy::Fixed => vec![1.0 / n_obj as f64; n_obj],
                WeightStrategy::RandomSweep => random_weights(n_obj, &mut rng),
            };
            let ranges = objective_ranges(&evaluated);
            let mut best: Option<(usize, f64)> = None;
            for &i in &screened {
                let mut acq = 0.0;
                for (k, gpk) in gps.iter().enumerate() {
                    let (mu, var) = gpk.predict(&candidates[i])?;
                    let sd = var.max(0.0).sqrt();
                    let (lo, range) = ranges[k];
                    acq += w[k] * ((mu - lo) / range - self.params.kappa * sd / range);
                }
                match best {
                    Some((_, bv)) if bv <= acq => {}
                    _ => best = Some((i, acq)),
                }
            }
            let (pick, _) = best.expect("screened set is non-empty");
            evaluate_all(&[pick], oracle, &mut evaluated, &mut flag);
            iter += 1;
        }

        Ok(BaselineResult::from_evaluations(evaluated, oracle.runs()))
    }
}

/// Small marginal-likelihood grid search for an isotropic lengthscale.
fn select_lengthscale(x: &[Vec<f64>], y: &[f64], dim: usize) -> Result<f64> {
    let mut best = (0.5, f64::NEG_INFINITY);
    for ls in [0.15, 0.3, 0.5, 0.8, 1.3] {
        let kernel = SquaredExponential::isotropic(dim, 1.0, ls)?;
        if let Ok(model) = GpRegressor::fit(x.to_vec(), y.to_vec(), kernel, 1e-4) {
            let lml = model.log_marginal_likelihood();
            if lml > best.1 {
                best = (ls, lml);
            }
        }
    }
    Ok(best.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatuner::VecOracle;

    fn toy(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let candidates: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let truth = candidates
            .iter()
            .map(|p| vec![p[0] + 0.1, (1.0 - p[0]).powi(2) + 0.1])
            .collect();
        (candidates, truth)
    }

    fn quick() -> Mlcad19Params {
        Mlcad19Params {
            budget: 20,
            initial_samples: 8,
            screen_size: 64,
            refit_every: 5,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn stays_within_budget() {
        let (candidates, truth) = toy(60);
        let mut oracle = VecOracle::new(truth);
        let r = Mlcad19::new(quick())
            .tune(&candidates, &mut oracle)
            .unwrap();
        assert_eq!(r.runs, 20);
        assert!(!r.pareto_indices.is_empty());
    }

    #[test]
    fn sweep_variant_beats_random_on_structured_landscape() {
        let (candidates, truth) = toy(100);
        let golden: Vec<Vec<f64>> = pareto::front::pareto_front(&truth)
            .into_iter()
            .map(|i| truth[i].clone())
            .collect();
        let reference = pareto::hypervolume::reference_point(&truth, 1.1).unwrap();

        let hv_err = |idx: &[usize]| {
            let pts: Vec<Vec<f64>> = idx.iter().map(|&i| truth[i].clone()).collect();
            pareto::hypervolume::hypervolume_error(&golden, &pts, &reference).unwrap()
        };

        let mut o1 = VecOracle::new(truth.clone());
        let bo = Mlcad19::new(Mlcad19Params {
            budget: 30,
            weights: WeightStrategy::RandomSweep,
            ..quick()
        })
        .tune(&candidates, &mut o1)
        .unwrap();
        // Average random over a few seeds for a stable comparison.
        let mut rand_sum = 0.0;
        for seed in 0..5 {
            let mut o2 = VecOracle::new(truth.clone());
            let rs = crate::RandomSearch::new(30, seed)
                .tune(&candidates, &mut o2)
                .unwrap();
            rand_sum += hv_err(&rs.pareto_indices);
        }
        assert!(
            hv_err(&bo.pareto_indices) <= rand_sum / 5.0 + 0.02,
            "bo {} vs random {}",
            hv_err(&bo.pareto_indices),
            rand_sum / 5.0
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (candidates, truth) = toy(40);
        let run = || {
            let mut oracle = VecOracle::new(truth.clone());
            Mlcad19::new(quick())
                .tune(&candidates, &mut oracle)
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejects_zero_budget() {
        let (candidates, truth) = toy(10);
        let mut oracle = VecOracle::new(truth);
        let p = Mlcad19Params {
            budget: 0,
            ..quick()
        };
        assert!(Mlcad19::new(p).tune(&candidates, &mut oracle).is_err());
    }
}

//! Shared plumbing of the baseline tuners.

use std::error::Error;
use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use ppatuner::QorOracle;

/// Errors produced by baseline tuners.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The candidate set or budget is unusable.
    InvalidInput {
        /// Description of the problem.
        reason: &'static str,
    },
    /// An internal surrogate model failed.
    Model(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidInput { reason } => {
                write!(f, "invalid baseline input: {reason}")
            }
            BaselineError::Model(msg) => write!(f, "surrogate model failure: {msg}"),
        }
    }
}

impl Error for BaselineError {}

impl From<gp::GpError> for BaselineError {
    fn from(e: gp::GpError) -> Self {
        BaselineError::Model(e.to_string())
    }
}

impl From<boost::BoostError> for BaselineError {
    fn from(e: boost::BoostError) -> Self {
        BaselineError::Model(e.to_string())
    }
}

/// Outcome of one baseline run: what was measured and which of it is
/// non-dominated.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// Candidate indices of the non-dominated measured configurations.
    pub pareto_indices: Vec<usize>,
    /// Every tool evaluation: `(candidate index, QoR vector)`.
    pub evaluated: Vec<(usize, Vec<f64>)>,
    /// Total tool runs.
    pub runs: usize,
}

impl BaselineResult {
    /// Builds the result from the evaluation log, extracting the
    /// non-dominated subset.
    pub fn from_evaluations(evaluated: Vec<(usize, Vec<f64>)>, runs: usize) -> Self {
        let pts: Vec<Vec<f64>> = evaluated.iter().map(|(_, y)| y.clone()).collect();
        let front = pareto::front::pareto_front(&pts);
        let pareto_indices = front.into_iter().map(|j| evaluated[j].0).collect();
        BaselineResult {
            pareto_indices,
            evaluated,
            runs,
        }
    }
}

/// Validates the common (candidates, budget) inputs.
pub(crate) fn check_inputs(candidates: &[Vec<f64>], budget: usize) -> Result<(), BaselineError> {
    if candidates.is_empty() {
        return Err(BaselineError::InvalidInput {
            reason: "candidate set must not be empty",
        });
    }
    let d = candidates[0].len();
    if d == 0 || candidates.iter().any(|c| c.len() != d) {
        return Err(BaselineError::InvalidInput {
            reason: "candidates must share a non-zero dimension",
        });
    }
    if budget == 0 {
        return Err(BaselineError::InvalidInput {
            reason: "budget must be at least one tool run",
        });
    }
    Ok(())
}

/// Draws `n` distinct candidate indices uniformly.
pub(crate) fn distinct_indices<R: Rng + ?Sized>(n: usize, total: usize, rng: &mut R) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..total).collect();
    idx.shuffle(rng);
    idx.truncate(n.min(total));
    idx
}

/// Evaluates `indices`, appending to the log and flag set. Baselines have
/// no retry/quarantine machinery: a failed evaluation is simply skipped
/// (the run burned a tool license and learned nothing — the honest cost
/// model for a naive tuner facing a flaky tool).
pub(crate) fn evaluate_all<O: QorOracle>(
    indices: &[usize],
    oracle: &mut O,
    evaluated: &mut Vec<(usize, Vec<f64>)>,
    flag: &mut [bool],
) {
    for &i in indices {
        if flag[i] {
            continue;
        }
        flag[i] = true;
        if let Ok(y) = oracle.evaluate(i) {
            evaluated.push((i, y));
        }
    }
}

/// A random positive weight vector summing to 1 (for scalarized
/// acquisitions that sweep the front).
pub(crate) fn random_weights<R: Rng + ?Sized>(m: usize, rng: &mut R) -> Vec<f64> {
    let raw: Vec<f64> = (0..m).map(|_| -rng.gen::<f64>().max(1e-12).ln()).collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|v| v / sum).collect()
}

/// Per-objective min/max normalizers from the evaluation log.
pub(crate) fn objective_ranges(evaluated: &[(usize, Vec<f64>)]) -> Vec<(f64, f64)> {
    let m = evaluated[0].1.len();
    (0..m)
        .map(|k| {
            let lo = evaluated
                .iter()
                .map(|(_, y)| y[k])
                .fold(f64::INFINITY, f64::min);
            let hi = evaluated
                .iter()
                .map(|(_, y)| y[k])
                .fold(f64::NEG_INFINITY, f64::max);
            (lo, (hi - lo).max(1e-12))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn result_extracts_front() {
        let evals = vec![
            (7, vec![1.0, 4.0]),
            (3, vec![2.0, 2.0]),
            (9, vec![3.0, 3.0]), // dominated
        ];
        let r = BaselineResult::from_evaluations(evals, 3);
        assert_eq!(r.pareto_indices, vec![7, 3]);
        assert_eq!(r.runs, 3);
    }

    #[test]
    fn input_checks() {
        assert!(check_inputs(&[], 5).is_err());
        assert!(check_inputs(&[vec![]], 5).is_err());
        assert!(check_inputs(&[vec![1.0]], 0).is_err());
        assert!(check_inputs(&[vec![1.0]], 1).is_ok());
    }

    #[test]
    fn distinct_indices_are_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let idx = distinct_indices(10, 100, &mut rng);
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        // Capped by the population size.
        assert_eq!(distinct_indices(50, 5, &mut rng).len(), 5);
    }

    #[test]
    fn weights_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let w = random_weights(3, &mut rng);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn ranges_cover_observations() {
        let evals = vec![(0, vec![1.0, 10.0]), (1, vec![3.0, 5.0])];
        let r = objective_ranges(&evals);
        assert_eq!(r[0].0, 1.0);
        assert!((r[0].1 - 2.0).abs() < 1e-12);
        assert_eq!(r[1].0, 5.0);
        assert!((r[1].1 - 5.0).abs() < 1e-12);
    }
}

//! Uniform random search (sanity-check control, not in the paper's
//! tables but useful for calibrating every other method).

use rand::rngs::StdRng;
use rand::SeedableRng;

use ppatuner::QorOracle;

use crate::common::{check_inputs, distinct_indices, evaluate_all, BaselineResult};
use crate::Result;

/// Random search: evaluate `budget` distinct uniformly-drawn candidates
/// and keep the non-dominated ones.
///
/// # Example
///
/// ```
/// use baselines::RandomSearch;
/// use ppatuner::VecOracle;
///
/// # fn main() -> Result<(), baselines::BaselineError> {
/// let candidates: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
/// let truth: Vec<Vec<f64>> = candidates.iter().map(|p| vec![p[0], 1.0 - p[0]]).collect();
/// let mut oracle = VecOracle::new(truth);
/// let result = RandomSearch::new(10, 42).tune(&candidates, &mut oracle)?;
/// assert_eq!(result.runs, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSearch {
    budget: usize,
    seed: u64,
}

impl RandomSearch {
    /// Creates a random search with the given tool-run budget and seed.
    pub fn new(budget: usize, seed: u64) -> Self {
        RandomSearch { budget, seed }
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BaselineError::InvalidInput`] for an empty
    /// candidate set or zero budget.
    pub fn tune<O: QorOracle>(
        &self,
        candidates: &[Vec<f64>],
        oracle: &mut O,
    ) -> Result<BaselineResult> {
        check_inputs(candidates, self.budget)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let picks = distinct_indices(self.budget, candidates.len(), &mut rng);
        let mut evaluated = Vec::new();
        let mut flag = vec![false; candidates.len()];
        evaluate_all(&picks, oracle, &mut evaluated, &mut flag);
        Ok(BaselineResult::from_evaluations(evaluated, oracle.runs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatuner::VecOracle;

    #[test]
    fn respects_budget_and_finds_front_members() {
        let candidates: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0]).collect();
        let truth: Vec<Vec<f64>> = candidates
            .iter()
            .map(|p| vec![p[0] + 0.1, (1.0 - p[0]).powi(2) + 0.1])
            .collect();
        let mut oracle = VecOracle::new(truth.clone());
        let result = RandomSearch::new(25, 3)
            .tune(&candidates, &mut oracle)
            .unwrap();
        assert_eq!(result.runs, 25);
        assert!(!result.pareto_indices.is_empty());
        // Every reported index is non-dominated among the evaluated set.
        for &i in &result.pareto_indices {
            for (_, y) in &result.evaluated {
                assert!(!pareto::dominance::dominates(y, &truth[i]));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let candidates: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let truth: Vec<Vec<f64>> = candidates.iter().map(|p| vec![p[0], 1.0 - p[0]]).collect();
        let run = |seed| {
            let mut oracle = VecOracle::new(truth.clone());
            RandomSearch::new(10, seed)
                .tune(&candidates, &mut oracle)
                .unwrap()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).evaluated, run(6).evaluated);
    }

    #[test]
    fn budget_larger_than_population_is_capped() {
        let candidates = vec![vec![0.0], vec![1.0]];
        let truth = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let mut oracle = VecOracle::new(truth);
        let result = RandomSearch::new(10, 0)
            .tune(&candidates, &mut oracle)
            .unwrap();
        assert_eq!(result.runs, 2);
    }
}

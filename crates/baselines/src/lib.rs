//! Reimplementations of the four state-of-the-art comparators used in the
//! PPATuner paper's evaluation (§4.2), plus a random-search control:
//!
//! - [`Tcad19`] — *Cross-layer optimization for high speed adders: a
//!   Pareto-driven machine learning approach* (Ma et al., TCAD'19): GP
//!   surrogates with Pareto-driven **active learning**: evaluate the
//!   candidate whose prediction is both promising (near the predicted
//!   front) and uncertain.
//! - [`Mlcad19`] — *CAD tool design space exploration via Bayesian
//!   optimization* (Ma et al., MLCAD'19): classical BO with the **lower
//!   confidence bound** acquisition, scalarized with random weights per
//!   iteration to sweep the front.
//! - [`Dac19`] — *A learning-based recommender system for autotuning
//!   design flows* (Kwon et al., DAC'19): **matrix-factorization**
//!   (latent-factor) prediction over discretized parameter levels with
//!   iterative recommendation rounds.
//! - [`Aspdac20`] — *FIST: a feature-importance sampling and tree-based
//!   method* (Xie et al., ASPDAC'20): boosted-tree surrogates with
//!   **feature-importance-guided** sampling; importances are learned from
//!   prior (source-task) data, the only baseline that uses it.
//! - [`RandomSearch`] — uniform sampling control.
//! - [`Nsga2`] — an NSGA-II evolutionary control (classical
//!   non-model-based multi-objective search over the candidate set).
//!
//! Every baseline consumes the same interface as the main tuner — a
//! candidate set, a [`ppatuner::QorOracle`], and a tool-run budget — and
//! returns the non-dominated subset of what it measured. None of them
//! (except FIST's importance transfer) can exploit source-task history;
//! that contrast is the paper's headline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aspdac20;
mod common;
mod dac19;
mod mlcad19;
mod nsga2;
mod random;
mod tcad19;

pub use aspdac20::{Aspdac20, Aspdac20Params};
pub use common::{BaselineError, BaselineResult};
pub use dac19::{Dac19, Dac19Params};
pub use mlcad19::{Mlcad19, Mlcad19Params, WeightStrategy};
pub use nsga2::{Nsga2, Nsga2Params};
pub use random::RandomSearch;
pub use tcad19::{Tcad19, Tcad19Params};

/// Convenience alias for results returned by this crate.
pub type Result<T, E = BaselineError> = std::result::Result<T, E>;

//! DAC'19: recommender-system autotuning via latent-factor (matrix/tensor
//! factorization) models (Kwon, Ziegler & Carloni, *A learning-based
//! recommender system for autotuning design flows*).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use ppatuner::QorOracle;

use crate::common::{check_inputs, distinct_indices, evaluate_all, random_weights, BaselineResult};
use crate::{BaselineError, Result};

/// Options of the [`Dac19`] tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dac19Params {
    /// Total tool-run budget (the paper reports this method needing the
    /// most runs: ~600 on Target1, ~130 on Target2).
    pub budget: usize,
    /// Runs spent on random initialization.
    pub initial_samples: usize,
    /// Recommendations evaluated per round.
    pub batch: usize,
    /// Discretization bins per parameter dimension.
    pub bins: usize,
    /// Latent-factor rank of the factorization model.
    pub rank: usize,
    /// SGD epochs per round.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization.
    pub reg: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Dac19Params {
    fn default() -> Self {
        Dac19Params {
            budget: 150,
            initial_samples: 30,
            batch: 10,
            bins: 6,
            rank: 4,
            epochs: 60,
            learning_rate: 0.05,
            reg: 1e-3,
            seed: 0,
        }
    }
}

/// The DAC'19 baseline: a factorization-machine recommender over
/// discretized parameter levels.
///
/// Each (parameter, level) pair is an "item feature" with a bias and a
/// rank-`r` latent vector; a configuration's predicted QoR is the global
/// bias plus feature biases plus all pairwise latent interactions — the
/// matrix-completion view of tool-parameter tuning. Rounds alternate SGD
/// training on everything measured so far with evaluating a batch of
/// recommended (predicted-good, weight-swept) configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dac19 {
    params: Dac19Params,
}

impl Dac19 {
    /// Creates the tuner.
    pub fn new(params: Dac19Params) -> Self {
        Dac19 { params }
    }

    /// Runs recommendation rounds until the budget is spent.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BaselineError`] for unusable inputs.
    pub fn tune<O: QorOracle>(
        &self,
        candidates: &[Vec<f64>],
        oracle: &mut O,
    ) -> Result<BaselineResult> {
        check_inputs(candidates, self.params.budget)?;
        if self.params.bins < 2 || self.params.rank == 0 || self.params.batch == 0 {
            return Err(BaselineError::InvalidInput {
                reason: "bins >= 2, rank >= 1 and batch >= 1 required",
            });
        }
        let n = candidates.len();
        let dim = candidates[0].len();
        let mut rng = StdRng::seed_from_u64(self.params.seed);

        // Precompute each candidate's discretized feature indices.
        let feats: Vec<Vec<usize>> = candidates
            .iter()
            .map(|c| {
                c.iter()
                    .enumerate()
                    .map(|(d, &x)| {
                        let b = ((x.clamp(0.0, 1.0) * self.params.bins as f64) as usize)
                            .min(self.params.bins - 1);
                        d * self.params.bins + b
                    })
                    .collect()
            })
            .collect();
        let n_feats = dim * self.params.bins;

        let init = self
            .params
            .initial_samples
            .clamp(2, self.params.budget)
            .min(n);
        let mut evaluated: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut flag = vec![false; n];
        let picks = distinct_indices(init, n, &mut rng);
        evaluate_all(&picks, oracle, &mut evaluated, &mut flag);
        let n_obj = evaluated[0].1.len();

        while oracle.runs() < self.params.budget && evaluated.len() < n {
            // Train one factorization model per objective.
            let models: Vec<FactorModel> = (0..n_obj)
                .map(|k| {
                    let ys: Vec<f64> = evaluated.iter().map(|(_, y)| y[k]).collect();
                    let xs: Vec<&[usize]> = evaluated
                        .iter()
                        .map(|(i, _)| feats[*i].as_slice())
                        .collect();
                    FactorModel::train(&xs, &ys, n_feats, self.params, &mut rng)
                })
                .collect();

            // Predict all unevaluated candidates; recommend a batch via
            // random-weight scalarization sweeps (one weight vector per
            // batch slot covers different front regions).
            let unevaluated: Vec<usize> = (0..n).filter(|&i| !flag[i]).collect();
            if unevaluated.is_empty() {
                break;
            }
            let preds: Vec<Vec<f64>> = unevaluated
                .iter()
                .map(|&i| models.iter().map(|m| m.predict(&feats[i])).collect())
                .collect();

            let room = self.params.budget - oracle.runs();
            let batch_n = self.params.batch.min(room).max(1);
            let mut chosen: Vec<usize> = Vec::with_capacity(batch_n);
            for _ in 0..batch_n {
                let w = random_weights(n_obj, &mut rng);
                let mut best: Option<(usize, f64)> = None;
                for (pos, &i) in unevaluated.iter().enumerate() {
                    if chosen.contains(&i) {
                        continue;
                    }
                    let s: f64 = preds[pos].iter().zip(&w).map(|(&p, &wk)| p * wk).sum();
                    match best {
                        Some((_, bv)) if bv <= s => {}
                        _ => best = Some((i, s)),
                    }
                }
                if let Some((i, _)) = best {
                    chosen.push(i);
                }
            }
            evaluate_all(&chosen, oracle, &mut evaluated, &mut flag);
        }

        Ok(BaselineResult::from_evaluations(evaluated, oracle.runs()))
    }
}

/// A rank-`r` factorization machine over one-hot (parameter, level)
/// features, trained with plain SGD on standardized outputs.
struct FactorModel {
    mean: f64,
    scale: f64,
    bias: f64,
    feat_bias: Vec<f64>,
    latent: Vec<Vec<f64>>, // n_feats × rank
}

impl FactorModel {
    fn train<R: Rng + ?Sized>(
        xs: &[&[usize]],
        ys: &[f64],
        n_feats: usize,
        p: Dac19Params,
        rng: &mut R,
    ) -> FactorModel {
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / ys.len() as f64;
        let scale = if var > 1e-24 { var.sqrt() } else { 1.0 };
        let z: Vec<f64> = ys.iter().map(|y| (y - mean) / scale).collect();

        let mut model = FactorModel {
            mean,
            scale,
            bias: 0.0,
            feat_bias: vec![0.0; n_feats],
            latent: (0..n_feats)
                .map(|_| (0..p.rank).map(|_| rng.gen_range(-0.05..0.05)).collect())
                .collect(),
        };

        let mut order: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..p.epochs {
            // Simple in-place Fisher–Yates reshuffle per epoch.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for &s in &order {
                let pred = model.predict_z(xs[s]);
                let err = pred - z[s];
                model.bias -= p.learning_rate * err;
                // Precompute the latent sum for the interaction gradient.
                let mut vsum = vec![0.0; p.rank];
                for &f in xs[s] {
                    for (r, vs) in vsum.iter_mut().enumerate() {
                        *vs += model.latent[f][r];
                    }
                }
                for &f in xs[s] {
                    model.feat_bias[f] -= p.learning_rate * (err + p.reg * model.feat_bias[f]);
                    for (&vs, vf) in vsum.iter().zip(model.latent[f].iter_mut()) {
                        let grad = vs - *vf;
                        *vf -= p.learning_rate * (err * grad + p.reg * *vf);
                    }
                }
            }
        }
        model
    }

    /// Standardized-space prediction.
    fn predict_z(&self, feats: &[usize]) -> f64 {
        let mut s = self.bias;
        for &f in feats {
            s += self.feat_bias[f];
        }
        // Pairwise interactions via the (Σv)² − Σv² identity.
        let rank = self.latent.first().map_or(0, Vec::len);
        for r in 0..rank {
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for &f in feats {
                let v = self.latent[f][r];
                sum += v;
                sum_sq += v * v;
            }
            s += 0.5 * (sum * sum - sum_sq);
        }
        s
    }

    fn predict(&self, feats: &[usize]) -> f64 {
        self.predict_z(feats) * self.scale + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatuner::VecOracle;

    fn toy(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let candidates: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let x = i as f64 / (n - 1) as f64;
                vec![x, ((i * 7) % n) as f64 / n as f64]
            })
            .collect();
        let truth = candidates
            .iter()
            .map(|p| vec![p[0] + 0.1, (1.0 - p[0]).powi(2) + 0.3 * p[1] + 0.1])
            .collect();
        (candidates, truth)
    }

    fn quick() -> Dac19Params {
        Dac19Params {
            budget: 30,
            initial_samples: 12,
            batch: 5,
            epochs: 30,
            seed: 2,
            ..Default::default()
        }
    }

    #[test]
    fn respects_budget_exactly() {
        let (candidates, truth) = toy(80);
        let mut oracle = VecOracle::new(truth);
        let r = Dac19::new(quick()).tune(&candidates, &mut oracle).unwrap();
        assert!(r.runs <= 30);
        assert!(r.runs >= 12);
        assert!(!r.pareto_indices.is_empty());
    }

    #[test]
    fn factor_model_learns_level_effects() {
        // Output depends only on the level of dimension 0.
        let mut rng = StdRng::seed_from_u64(7);
        let p = Dac19Params {
            epochs: 120,
            ..Default::default()
        };
        let feats: Vec<Vec<usize>> = (0..60).map(|i| vec![(i % 6), 6 + (i / 10) % 6]).collect();
        let ys: Vec<f64> = feats.iter().map(|f| f[0] as f64 * 2.0).collect();
        let xs: Vec<&[usize]> = feats.iter().map(Vec::as_slice).collect();
        let model = FactorModel::train(&xs, &ys, 12, p, &mut rng);
        let lo = model.predict(&[0, 6]);
        let hi = model.predict(&[5, 6]);
        assert!(hi > lo + 5.0, "hi {hi} vs lo {lo}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (candidates, truth) = toy(50);
        let run = || {
            let mut oracle = VecOracle::new(truth.clone());
            Dac19::new(quick()).tune(&candidates, &mut oracle).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn validates_params() {
        let (candidates, truth) = toy(10);
        let mut oracle = VecOracle::new(truth);
        for p in [
            Dac19Params { bins: 1, ..quick() },
            Dac19Params { rank: 0, ..quick() },
            Dac19Params {
                batch: 0,
                ..quick()
            },
            Dac19Params {
                budget: 0,
                ..quick()
            },
        ] {
            assert!(Dac19::new(p).tune(&candidates, &mut oracle).is_err());
        }
    }
}
